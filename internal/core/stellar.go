// Package stellar is the paper's primary contribution assembled from the
// substrates: the vStellar hybrid-virtualized RDMA device (§4) with its
// virtio control path and direct-mapped data path, PVDMA-backed
// on-demand memory registration (§5), eMTT programming for GDR (§6),
// and — for every comparison in §8 — the baseline stacks: the legacy
// SR-IOV/VFIO/VxLAN framework of §3 and the HyV/MasQ hybrid without
// GDR optimisation.
package stellar

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/addr"
	"repro/internal/gpu"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/pcie"
	"repro/internal/pvdma"
	"repro/internal/rnic"
	"repro/internal/rund"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Errors returned by the stellar framework.
var (
	ErrDeviceLimit  = errors.New("stellar: virtual device limit reached")
	ErrDestroyed    = errors.New("stellar: device destroyed")
	ErrNoGPU        = errors.New("stellar: host has no GPU at that index")
	ErrToRDiscard   = errors.New("stellar: ToR discarded VxLAN frame with zero MAC")
	ErrNeedsVFIO    = errors.New("stellar: legacy device requires a full-pin container")
	ErrGDRUnplanned = errors.New("stellar: GDR not enabled on this device")
)

// DeviceCreateTime is the vStellar device spin-up latency: ~1.5 s,
// matching MasQ (§4).
const DeviceCreateTime = 1500 * time.Millisecond

// ControlPathRTT is the virtio interception cost added to every control
// verb (QP creation/modification, MR registration): guest driver →
// host virtio driver → RNIC and back.
const ControlPathRTT = 35 * time.Microsecond

// TCPVirtioOverhead is the throughput penalty of the virtio/SF/VxLAN
// path for non-RDMA traffic (§4: ~5%, acceptable because TCP carries
// only control messages).
const TCPVirtioOverhead = 0.05

// HostConfig sizes one GPU server.
type HostConfig struct {
	// MemoryBytes is host RAM (2 TiB default).
	MemoryBytes uint64
	// NumSwitches/NumRNICs/NumGPUs describe the PCIe layout. The paper's
	// troubled server model is 4 switches, 4 RNICs, 8 GPUs.
	NumSwitches int
	NumRNICs    int
	NumGPUs     int
	// GPUMemoryBytes per GPU.
	GPUMemoryBytes uint64
	// RNICConfig builds each RNIC's configuration.
	RNICConfig func(i int) rnic.Config
	// IOMMU and PCIe settings.
	IOMMU iommu.Config
	PCIe  pcie.Config
}

// DefaultHostConfig returns the paper's server: 4 PCIe switches, each
// with one RNIC and two GPUs.
func DefaultHostConfig() HostConfig {
	return HostConfig{
		MemoryBytes:    2 << 40,
		NumSwitches:    4,
		NumRNICs:       4,
		NumGPUs:        8,
		GPUMemoryBytes: 8 << 30,
		RNICConfig:     func(i int) rnic.Config { return rnic.DefaultConfig(fmt.Sprintf("rnic%d", i)) },
		IOMMU:          iommu.Config{Mode: iommu.ModeNoPT, ATSEnabled: true},
	}
}

// Host is one assembled GPU server.
type Host struct {
	Complex    *pcie.Complex
	Switches   []*pcie.Switch
	RNICs      []*rnic.RNIC
	GPUs       []*gpu.GPU
	Hypervisor *rund.Hypervisor

	devices  map[int]*VStellarDevice
	nextDev  int
	devLimit int

	tr      *trace.Tracer
	trLabel string
}

// NewHost assembles a server from the configuration.
func NewHost(cfg HostConfig) (*Host, error) {
	d := DefaultHostConfig()
	if cfg.MemoryBytes == 0 {
		cfg.MemoryBytes = d.MemoryBytes
	}
	if cfg.NumSwitches == 0 {
		cfg.NumSwitches = d.NumSwitches
	}
	if cfg.NumRNICs == 0 {
		cfg.NumRNICs = d.NumRNICs
	}
	if cfg.NumGPUs == 0 {
		cfg.NumGPUs = d.NumGPUs
	}
	if cfg.GPUMemoryBytes == 0 {
		cfg.GPUMemoryBytes = d.GPUMemoryBytes
	}
	if cfg.RNICConfig == nil {
		cfg.RNICConfig = d.RNICConfig
	}
	u, err := iommu.New(cfg.IOMMU)
	if err != nil {
		return nil, err
	}
	m := mem.New(mem.Config{TotalBytes: cfg.MemoryBytes})
	complex := pcie.NewComplex(cfg.PCIe, u, m)

	h := &Host{
		Complex:  complex,
		devices:  make(map[int]*VStellarDevice),
		devLimit: 64 << 10, // §4: up to 64k virtual devices
	}
	for i := 0; i < cfg.NumSwitches; i++ {
		h.Switches = append(h.Switches, complex.AddSwitch(fmt.Sprintf("sw%d", i)))
	}
	for i := 0; i < cfg.NumRNICs; i++ {
		sw := h.Switches[i%len(h.Switches)]
		r, err := rnic.New(complex, sw, cfg.RNICConfig(i))
		if err != nil {
			return nil, err
		}
		// Stellar registers only the PF's BDF for GDR: one LUT entry
		// per switch per RNIC regardless of virtual-device count (§4).
		if err := complex.RegisterGDRAll(r.PF().BDF()); err != nil {
			return nil, err
		}
		h.RNICs = append(h.RNICs, r)
	}
	for i := 0; i < cfg.NumGPUs; i++ {
		sw := h.Switches[i%len(h.Switches)]
		g, err := gpu.New(complex, sw, fmt.Sprintf("gpu%d", i), cfg.GPUMemoryBytes)
		if err != nil {
			return nil, err
		}
		h.GPUs = append(h.GPUs, g)
	}
	h.Hypervisor = rund.NewHypervisor(complex)
	return h, nil
}

// SetTracer attaches a flight recorder to the host and every substrate
// under it (PCIe complex, RNICs, and PVDMA managers of live and future
// devices). label names the trace process; a typical cluster uses
// "host<N>".
func (h *Host) SetTracer(t *trace.Tracer, label string) {
	h.tr = t
	h.trLabel = label
	h.Complex.SetTracer(t, label)
	for _, r := range h.RNICs {
		r.SetTracer(t, label)
	}
	for _, d := range h.devices {
		d.pv.SetTracer(t, label)
	}
}

// NumDevices reports live vStellar devices on the host.
func (h *Host) NumDevices() int { return len(h.devices) }

// DeviceLimit reports the virtual-device ceiling.
func (h *Host) DeviceLimit() int { return h.devLimit }

// VStellarDevice is one virtual RDMA device inside a secure container:
// an SF (shared BDF), a doorbell page direct-mapped through the virtio
// shm window, a dedicated protection domain, and a PVDMA manager for
// on-demand registration.
type VStellarDevice struct {
	ID        int
	Container *rund.Container
	RNIC      *rnic.RNIC

	host     *Host
	sf       *rnic.SF
	pd       rnic.PD
	doorbell addr.HPARange
	vdbGPA   addr.GPA
	pv       *pvdma.Manager

	mrs       []*rnic.MR
	qps       []*rnic.QP
	destroyed bool

	// CreateLatency is the virtual-time cost of spinning the device up.
	CreateLatency sim.Duration
	// ControlLatency accumulates virtio control-path time spent.
	ControlLatency sim.Duration
}

// CreateVStellar spins up a vStellar device for the container on the
// given RNIC. The container may run in PVDMA mode — no VFIO, no full
// pin, no extra BDF, no LUT entry.
func (h *Host) CreateVStellar(c *rund.Container, r *rnic.RNIC) (*VStellarDevice, error) {
	if len(h.devices) >= h.devLimit {
		return nil, fmt.Errorf("%w: %d", ErrDeviceLimit, h.devLimit)
	}
	db, err := r.AllocDoorbell()
	if err != nil {
		return nil, err
	}
	vdb := c.AllocSHMWindow(addr.PageSize4K)
	if err := c.MapSHM(vdb, db); err != nil {
		r.FreeDoorbell(db)
		return nil, err
	}
	d := &VStellarDevice{
		ID:            h.nextDev,
		Container:     c,
		RNIC:          r,
		host:          h,
		sf:            r.CreateSF(),
		pd:            r.AllocPD(), // §9: one PD per VM
		doorbell:      db,
		vdbGPA:        vdb,
		pv:            pvdma.New(c, pvdma.Config{}),
		CreateLatency: DeviceCreateTime,
	}
	if h.tr != nil {
		d.pv.SetTracer(h.tr, h.trLabel)
	}
	h.nextDev++
	h.devices[d.ID] = d
	return d, nil
}

// Destroy releases the device's resources in seconds, not reboots.
func (d *VStellarDevice) Destroy() {
	if d.destroyed {
		return
	}
	d.destroyed = true
	for _, mr := range d.mrs {
		_ = d.RNIC.DeregisterMR(mr)
	}
	for _, qp := range d.qps {
		d.RNIC.DestroyQP(qp)
	}
	d.RNIC.DestroySF(d.sf)
	d.RNIC.DeallocPD(d.pd)
	d.RNIC.FreeDoorbell(d.doorbell)
	delete(d.host.devices, d.ID)
}

// Destroyed reports whether the device was torn down.
func (d *VStellarDevice) Destroyed() bool { return d.destroyed }

// PD returns the device's protection domain.
func (d *VStellarDevice) PD() rnic.PD { return d.pd }

// PVDMA returns the device's on-demand registration manager.
func (d *VStellarDevice) PVDMA() *pvdma.Manager { return d.pv }

// DoorbellGPA returns where the guest sees the vDB (in the shm window).
func (d *VStellarDevice) DoorbellGPA() addr.GPA { return d.vdbGPA }

// CreateQP allocates a queue pair through the virtio control path and
// drives it to RTS. Control verbs pay ControlPathRTT each; the data
// path stays direct.
func (d *VStellarDevice) CreateQP() (*rnic.QP, error) {
	if d.destroyed {
		return nil, ErrDestroyed
	}
	qp, err := d.RNIC.CreateQP(d.pd)
	if err != nil {
		return nil, err
	}
	// create + 3 modifies, each one interception round trip.
	for _, st := range []rnic.QPState{rnic.QPInit, rnic.QPReadyToReceive, rnic.QPReadyToSend} {
		if err := d.RNIC.ModifyQP(qp, st); err != nil {
			return nil, err
		}
	}
	d.ControlLatency += 4 * ControlPathRTT
	d.qps = append(d.qps, qp)
	return qp, nil
}

// RegisterHostMemory registers a guest buffer for RDMA: the control
// path resolves GVA→GPA, PVDMA pins and installs the IOMMU window on
// demand, and the eMTT entry carries the container's DA with
// owner=host (Figure 7's RDMA flow).
func (d *VStellarDevice) RegisterHostMemory(gva addr.GVARange) (*rnic.MR, error) {
	if d.destroyed {
		return nil, ErrDestroyed
	}
	gpa, ok := d.Container.GuestPT().Translate(addr.GVA(gva.Start))
	if !ok {
		return nil, fmt.Errorf("stellar: %v unmapped in guest", addr.GVA(gva.Start))
	}
	pinCost, err := d.pv.MapDMA(gpa, gva.Size)
	if err != nil {
		return nil, err
	}
	mr, err := d.RNIC.RegisterMR(d.pd, gva.Range, rnic.MTTEntry{
		Base:  uint64(d.Container.GPAToDA(gpa)),
		Owner: addr.OwnerHostMemory,
	})
	if err != nil {
		return nil, err
	}
	d.ControlLatency += ControlPathRTT + pinCost
	d.mrs = append(d.mrs, mr)
	return mr, nil
}

// RegisterGPUMemory registers GPU device memory for GDR: the eMTT entry
// carries the final HPA and owner=GPU, so inbound writes go out as
// AT=translated and bypass the Root Complex (Figure 7's GDR flow).
func (d *VStellarDevice) RegisterGPUMemory(gva addr.GVARange, gmem addr.HPARange) (*rnic.MR, error) {
	if d.destroyed {
		return nil, ErrDestroyed
	}
	if gva.Size > gmem.Size {
		return nil, fmt.Errorf("stellar: VA span %d exceeds GPU allocation %d", gva.Size, gmem.Size)
	}
	mr, err := d.RNIC.RegisterMR(d.pd, gva.Range, rnic.MTTEntry{
		Base:       gmem.Start,
		Owner:      addr.OwnerGPU,
		Translated: true,
	})
	if err != nil {
		return nil, err
	}
	d.ControlLatency += ControlPathRTT
	d.mrs = append(d.mrs, mr)
	return mr, nil
}

// Write performs an RDMA write on the direct data path: no virtio
// interception, straight to the RNIC pipeline.
func (d *VStellarDevice) Write(qp *rnic.QP, key uint32, va, size uint64) (rnic.WriteResult, error) {
	if d.destroyed {
		return rnic.WriteResult{}, ErrDestroyed
	}
	return d.RNIC.RDMAWrite(qp, key, va, size)
}

// Read performs an RDMA read on the direct data path (the responder
// side serving a remote read of this device's memory).
func (d *VStellarDevice) Read(qp *rnic.QP, key uint32, va, size uint64) (rnic.WriteResult, error) {
	if d.destroyed {
		return rnic.WriteResult{}, ErrDestroyed
	}
	return d.RNIC.RDMARead(qp, key, va, size)
}

// CreateSendQueue builds the queue-pair's work/completion queues bound
// to this device's doorbell page. Creating them is a control-path verb;
// posting and ringing are pure data path.
func (d *VStellarDevice) CreateSendQueue(qp *rnic.QP, depth int) (*rnic.SQ, *rnic.CQ, error) {
	if d.destroyed {
		return nil, nil, ErrDestroyed
	}
	cq := d.RNIC.CreateCQ(depth * 2)
	sq := d.RNIC.CreateSQ(qp, cq, d.doorbell, depth)
	d.ControlLatency += 2 * ControlPathRTT
	return sq, cq, nil
}

// RingDoorbell is the guest CPU kicking the device: the write targets
// the vDB's guest-physical address in the shm window, the EPT resolves
// it to the RNIC's physical doorbell, and the RNIC drains the send
// queue. No hypervisor exit — the mapping is direct.
func (d *VStellarDevice) RingDoorbell(sq *rnic.SQ) (sim.Duration, error) {
	if d.destroyed {
		return 0, ErrDestroyed
	}
	hpa, ok := d.Container.EPT().Translate(d.vdbGPA)
	if !ok {
		return 0, fmt.Errorf("stellar: vDB %v lost its EPT mapping", d.vdbGPA)
	}
	return sq.RingDoorbell(hpa)
}

// EnableGPUDirectAsync registers the shm-hosted doorbell in the IOMMU
// so a GPU can ring it by DMA (§5's GPUDirect Async support), returning
// the device address the GPU must target.
func (d *VStellarDevice) EnableGPUDirectAsync() (addr.DA, error) {
	if d.destroyed {
		return 0, ErrDestroyed
	}
	if _, err := d.pv.MapDoorbellSHM(d.vdbGPA, d.doorbell); err != nil {
		return 0, err
	}
	return d.Container.GPAToDA(d.vdbGPA), nil
}

// RingDoorbellFromGPU drives the GPUDirect Async path end to end: the
// GPU DMA-writes the doorbell DA, the IOMMU resolves it onto the RNIC's
// doorbell BAR, and the send queue drains.
func (d *VStellarDevice) RingDoorbellFromGPU(g *gpu.GPU, sq *rnic.SQ, da addr.DA) (sim.Duration, error) {
	if d.destroyed {
		return 0, ErrDestroyed
	}
	delivery, err := g.DMAWrite(da, 8)
	if err != nil {
		return 0, err
	}
	return sq.RingDoorbellFromDelivery(delivery)
}
