package stellar

import (
	"errors"
	"testing"

	"repro/internal/addr"
	"repro/internal/pcie"
	"repro/internal/rnic"
	"repro/internal/rund"
)

// dataPathRig: a vStellar device with a ready QP, host-memory MR, and
// send/completion queues.
type dataPathRig struct {
	h   *Host
	c   *rund.Container
	d   *VStellarDevice
	qp  *rnic.QP
	mr  *rnic.MR
	sq  *rnic.SQ
	cq  *rnic.CQ
	gva addr.GVARange
}

func newDataPathRig(t *testing.T) *dataPathRig {
	t.Helper()
	h := newTestHost(t)
	c := startContainer(t, h, "dp", 4<<30, rund.PinOnDemand)
	d, err := h.CreateVStellar(c, h.RNICs[0])
	if err != nil {
		t.Fatal(err)
	}
	qp, err := d.CreateQP()
	if err != nil {
		t.Fatal(err)
	}
	gva, _, err := c.AllocGuestBuffer(addr.PageSize2M)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := d.RegisterHostMemory(gva)
	if err != nil {
		t.Fatal(err)
	}
	sq, cq, err := d.CreateSendQueue(qp, 8)
	if err != nil {
		t.Fatal(err)
	}
	return &dataPathRig{h: h, c: c, d: d, qp: qp, mr: mr, sq: sq, cq: cq, gva: gva}
}

func TestCPUDoorbellDataPath(t *testing.T) {
	// §4's data-path claim end to end: post WQEs, ring the vDB (via EPT
	// through the shm window), collect CQEs — no hypervisor verbs.
	r := newDataPathRig(t)
	ctlBefore := r.d.ControlLatency
	for i := 0; i < 4; i++ {
		if err := r.sq.PostSend(rnic.WQE{Key: r.mr.Key, VA: r.gva.Start + uint64(i)*4096, Size: 4096, ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	cost, err := r.d.RingDoorbell(r.sq)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Error("no data-path cost")
	}
	if r.d.ControlLatency != ctlBefore {
		t.Error("data path charged control-path latency")
	}
	if r.cq.Len() != 4 {
		t.Fatalf("CQ has %d entries", r.cq.Len())
	}
	for i := 0; i < 4; i++ {
		cqe, err := r.cq.Poll()
		if err != nil || cqe.Status != nil {
			t.Fatalf("cqe %d: %+v err=%v", i, cqe, err)
		}
		if cqe.Result.Route != pcie.RouteToMemory {
			t.Errorf("cqe %d route = %v", i, cqe.Result.Route)
		}
	}
}

func TestGPUDirectAsyncDataPath(t *testing.T) {
	// §5's GPUDirect Async: the GPU rings the doorbell by DMA through
	// the IOMMU after explicit shm registration.
	r := newDataPathRig(t)
	r.sq.PostSend(rnic.WQE{Key: r.mr.Key, VA: r.gva.Start, Size: 4096, ID: 1})

	g := r.h.GPUs[0]
	// Without enabling GDA the GPU cannot reach the doorbell.
	if _, err := r.d.RingDoorbellFromGPU(g, r.sq, r.c.GPAToDA(r.d.DoorbellGPA())); err == nil {
		t.Fatal("GPU rang the doorbell without IOMMU registration")
	}
	da, err := r.d.EnableGPUDirectAsync()
	if err != nil {
		t.Fatal(err)
	}
	cost, err := r.d.RingDoorbellFromGPU(g, r.sq, da)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Error("no GDA cost")
	}
	cqe, err := r.cq.Poll()
	if err != nil || cqe.ID != 1 || cqe.Status != nil {
		t.Fatalf("cqe = %+v err=%v", cqe, err)
	}
}

func TestDoorbellAfterDestroy(t *testing.T) {
	r := newDataPathRig(t)
	r.d.Destroy()
	if _, err := r.d.RingDoorbell(r.sq); !errors.Is(err, ErrDestroyed) {
		t.Errorf("err = %v", err)
	}
	if _, err := r.d.EnableGPUDirectAsync(); !errors.Is(err, ErrDestroyed) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := r.d.CreateSendQueue(r.qp, 4); !errors.Is(err, ErrDestroyed) {
		t.Errorf("err = %v", err)
	}
}

func TestDeviceRead(t *testing.T) {
	r := newDataPathRig(t)
	res, err := r.d.Read(r.qp, r.mr.Key, r.gva.Start, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Route != pcie.RouteToMemory {
		t.Errorf("read route = %v", res.Route)
	}
	r.d.Destroy()
	if _, err := r.d.Read(r.qp, r.mr.Key, r.gva.Start, 64); !errors.Is(err, ErrDestroyed) {
		t.Errorf("read after destroy err = %v", err)
	}
}
