package multipath

import (
	"time"

	"repro/internal/sim"
)

// Additional policies from the paper's discussion sections: flowlet
// switching (§7.1 — "we appreciate the simplicity ... and plan to
// enable it in our older-generation GPU clusters") and a path-aware
// sprayer in the spirit of SMaRTT-REPS/STrack (§9 — implemented by the
// authors, found to offer no significant advantage over OBS for
// regular AI traffic).
const (
	// Flowlet switches paths only after an idle gap within the flow.
	Flowlet Algorithm = iota + OBS + 1
	// PathAware sprays while avoiding recently-congested paths and
	// recycling paths that just delivered clean acks (REPS-style).
	PathAware
)

// ClockedSelector is implemented by selectors that need virtual time
// (flowlet gap detection). The transport wires the engine clock in
// after construction; without a clock the selector sees a frozen time
// and never detects a gap.
type ClockedSelector interface {
	Selector
	SetClock(now func() sim.Time)
}

// DefaultFlowletGap is the inter-packet gap that opens a new flowlet.
const DefaultFlowletGap = 50 * time.Microsecond

// flowlet keeps the current path while packets keep flowing and
// re-picks pseudo-randomly after an idle gap. RDMA's bulk transfers
// rarely pause, which is exactly why the paper finds flowlets
// ineffective for RDMA load balancing.
type flowlet struct {
	n        int
	gap      sim.Duration
	rng      *sim.RNG
	now      func() sim.Time
	path     int
	lastSend sim.Time
	started  bool
	switches uint64
}

func newFlowlet(n int, rng *sim.RNG) *flowlet {
	return &flowlet{
		n:    n,
		gap:  sim.Duration(DefaultFlowletGap),
		rng:  rng,
		now:  func() sim.Time { return 0 },
		path: rng.Intn(n),
	}
}

func (f *flowlet) Name() string  { return Flowlet.String() }
func (f *flowlet) NumPaths() int { return f.n }

// SetClock installs the virtual-time source.
func (f *flowlet) SetClock(now func() sim.Time) { f.now = now }

// Switches reports how many flowlet boundaries were detected.
func (f *flowlet) Switches() uint64 { return f.switches }

func (f *flowlet) NextPath() int {
	t := f.now()
	if f.started && t.Sub(f.lastSend) > f.gap {
		f.path = f.rng.Intn(f.n)
		f.switches++
	}
	f.started = true
	f.lastSend = t
	return f.path
}

func (f *flowlet) Feedback(int, sim.Duration, bool, bool) {}

// pathAware is a REPS-flavoured sprayer: paths that return clean acks
// are recycled preferentially; paths that signal congestion cool down;
// otherwise it sprays obliviously. On the regular, low-entropy traffic
// of AI training this collapses to OBS-like behaviour — the paper's §9
// observation.
type pathAware struct {
	n        int
	rng      *sim.RNG
	recycle  []int
	cooldown []uint8
}

func newPathAware(n int, rng *sim.RNG) *pathAware {
	return &pathAware{n: n, rng: rng, cooldown: make([]uint8, n)}
}

func (p *pathAware) Name() string  { return PathAware.String() }
func (p *pathAware) NumPaths() int { return p.n }

func (p *pathAware) NextPath() int {
	// Prefer recycled clean paths.
	for len(p.recycle) > 0 {
		i := p.recycle[len(p.recycle)-1]
		p.recycle = p.recycle[:len(p.recycle)-1]
		if p.cooldown[i] == 0 {
			return i
		}
	}
	// Otherwise spray, skipping cooling paths a few times.
	for tries := 0; tries < 4; tries++ {
		i := p.rng.Intn(p.n)
		if p.cooldown[i] == 0 {
			return i
		}
		p.cooldown[i]--
	}
	return p.rng.Intn(p.n)
}

func (p *pathAware) Feedback(path int, rtt sim.Duration, ecn, lost bool) {
	if path < 0 || path >= p.n {
		return
	}
	switch {
	case lost:
		p.cooldown[path] = 8
	case ecn:
		p.cooldown[path] = 4
	default:
		if len(p.recycle) < 2*p.n {
			p.recycle = append(p.recycle, path)
		}
	}
}

// SwitchAR marks the connection as delegating path choice to the
// switches (Adaptive Routing, §7.1's third category): the selector
// returns PathSwitchDecides and the fabric's AR-enabled ToR picks the
// least-loaded uplink per packet. The paper rejects AR not on
// performance ("comparable gains") but on operability: packets with
// identical headers scatter across paths, blinding monitoring systems.
const SwitchAR Algorithm = PathAware + 1

// PathSwitchDecides is the sentinel path an AR connection stamps on
// every packet.
const PathSwitchDecides = -1

type switchAR struct{ n int }

func (s *switchAR) Name() string                           { return SwitchAR.String() }
func (s *switchAR) NextPath() int                          { return PathSwitchDecides }
func (s *switchAR) Feedback(int, sim.Duration, bool, bool) {}
func (s *switchAR) NumPaths() int                          { return s.n }

// NewPinned returns a selector permanently bound to one path — the
// building block for Traffic Engineering (§7.1's first category), where
// a central controller computes each flow's path up front.
func NewPinned(path, numPaths int) Selector {
	if path < 0 || path >= numPaths {
		panic("multipath: pinned path out of range")
	}
	return &pinned{path: path, n: numPaths}
}

type pinned struct{ path, n int }

func (p *pinned) Name() string                           { return "te-pinned" }
func (p *pinned) NextPath() int                          { return p.path }
func (p *pinned) Feedback(int, sim.Duration, bool, bool) {}
func (p *pinned) NumPaths() int                          { return p.n }
