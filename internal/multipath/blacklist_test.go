package multipath

import (
	"testing"

	"repro/internal/sim"
)

// TestBlacklistPassThrough: with nothing quarantined the wrapper must
// reproduce the inner selector's decisions exactly.
func TestBlacklistPassThrough(t *testing.T) {
	a := New(RoundRobin, 8, sim.NewRNG(3))
	b := WithBlacklist(New(RoundRobin, 8, sim.NewRNG(3)))
	for i := 0; i < 100; i++ {
		if pa, pb := a.NextPath(), b.NextPath(); pa != pb {
			t.Fatalf("pick %d: %d vs %d", i, pa, pb)
		}
	}
	if b.Name() != "rr" || b.NumPaths() != 8 {
		t.Error("wrapper identity")
	}
}

// TestBlacklistSkipsDownPaths: quarantined paths are only ever picked
// on the probe cadence.
func TestBlacklistSkipsDownPaths(t *testing.T) {
	b := WithBlacklist(New(RoundRobin, 8, sim.NewRNG(3)))
	b.MarkDown(2)
	b.MarkDown(5)
	if b.NumDown() != 2 || !b.Down(2) || !b.Down(5) || b.Down(0) {
		t.Fatal("mark state")
	}
	probes := 0
	for i := 1; i <= 160; i++ {
		p := b.NextPath()
		if p == 2 || p == 5 {
			probes++
			if i%DefaultProbeEvery != 0 {
				t.Fatalf("pick %d chose quarantined path %d off the probe cadence", i, p)
			}
		}
	}
	// 160 picks at a 1/16 cadence = 10 probes, alternating 2 and 5.
	if probes != 10 {
		t.Errorf("probes = %d, want 10", probes)
	}
}

// TestBlacklistProbeReinstates: a clean ack on a quarantined path
// brings it back; a loss on probe keeps it out.
func TestBlacklistProbeReinstates(t *testing.T) {
	b := WithBlacklist(New(OBS, 4, sim.NewRNG(1)))
	b.MarkDown(3)
	b.Feedback(3, 10, false, true) // probe lost: stays down
	if !b.Down(3) {
		t.Fatal("loss reinstated the path")
	}
	b.Feedback(3, 10, false, false) // clean ack: reinstated
	if b.Down(3) || b.NumDown() != 0 {
		t.Fatal("clean ack did not reinstate")
	}
}

// TestBlacklistAutoQuarantine: a loss streak trips the quarantine
// without any external MarkDown; a clean ack resets the streak.
func TestBlacklistAutoQuarantine(t *testing.T) {
	b := WithBlacklist(New(OBS, 4, sim.NewRNG(1)))
	b.Feedback(1, 10, false, true)
	b.Feedback(1, 10, false, true)
	b.Feedback(1, 10, false, false) // streak broken
	b.Feedback(1, 10, false, true)
	b.Feedback(1, 10, false, true)
	if b.Down(1) {
		t.Fatal("quarantined below the streak limit")
	}
	b.Feedback(1, 10, false, true)
	if !b.Down(1) {
		t.Fatal("loss streak did not quarantine")
	}
}

// TestBlacklistAllDown: with every path quarantined the wrapper falls
// back to the inner selector rather than spinning.
func TestBlacklistAllDown(t *testing.T) {
	b := WithBlacklist(New(RoundRobin, 4, sim.NewRNG(3)))
	for p := 0; p < 4; p++ {
		b.MarkDown(p)
	}
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		seen[b.NextPath()] = true
	}
	if len(seen) != 4 {
		t.Errorf("all-down picks covered %d paths, want 4", len(seen))
	}
}

// TestBlacklistPinnedInner: single-path pins to one path; when that
// path is down the wrapper must deterministically step off it.
func TestBlacklistPinnedInner(t *testing.T) {
	inner := New(SinglePath, 4, sim.NewRNG(2))
	pinned := inner.NextPath()
	b := WithBlacklist(inner)
	b.MarkDown(pinned)
	for i := 1; i <= 20; i++ {
		p := b.NextPath()
		if i%DefaultProbeEvery == 0 {
			continue // probe pick may legitimately test the dead path
		}
		if p == pinned {
			t.Fatalf("pick %d stayed on the quarantined pinned path", i)
		}
	}
}

// TestBlacklistUnwrap mirrors the traced-selector contract.
func TestBlacklistUnwrap(t *testing.T) {
	inner := New(OBS, 4, sim.NewRNG(1))
	b := WithBlacklist(inner)
	if b.Unwrap() != inner {
		t.Error("Unwrap")
	}
}
