// Package multipath implements the path-selection algorithms compared in
// §7.2: the single-path baseline, Round Robin, Dynamic Weighted Round
// Robin, BestRTT, an MP-RDMA-style congestion-aware selector, and the
// Oblivious Packet Spraying (OBS) algorithm Stellar ships with 128
// paths. Selectors are per-connection objects the transport consults for
// every packet, feeding back per-path RTT/ECN/loss observations from
// acks.
package multipath

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Algorithm names a path-selection policy.
type Algorithm uint8

// The algorithms evaluated in Figure 9/10/11/12.
const (
	SinglePath Algorithm = iota
	RoundRobin
	DWRR
	BestRTT
	MPRDMA
	OBS
)

func (a Algorithm) String() string {
	switch a {
	case SinglePath:
		return "single-path"
	case RoundRobin:
		return "rr"
	case DWRR:
		return "dwrr"
	case BestRTT:
		return "best-rtt"
	case MPRDMA:
		return "mprdma"
	case OBS:
		return "obs"
	case Flowlet:
		return "flowlet"
	case PathAware:
		return "path-aware"
	case SwitchAR:
		return "switch-ar"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// Algorithms lists the §7.2 selectors for sweep harnesses. The
// discussion-section policies (Flowlet, PathAware) are constructed the
// same way but swept separately by their ablation experiments.
func Algorithms() []Algorithm {
	return []Algorithm{SinglePath, RoundRobin, DWRR, BestRTT, MPRDMA, OBS}
}

// AllAlgorithms also includes the discussion-section policies.
func AllAlgorithms() []Algorithm {
	return append(Algorithms(), Flowlet, PathAware)
}

// Selector chooses a path in [0, NumPaths) for each outgoing packet.
type Selector interface {
	// Name identifies the algorithm.
	Name() string
	// NextPath returns the path for the next packet.
	NextPath() int
	// Feedback reports an ack/loss observation for a path.
	Feedback(path int, rtt sim.Duration, ecn, lost bool)
	// NumPaths returns the configured fan-out.
	NumPaths() int
}

// New constructs a selector with the given fan-out. rng must be a
// per-connection stream (fork it) so connections decorrelate.
func New(alg Algorithm, numPaths int, rng *sim.RNG) Selector {
	if numPaths < 1 {
		panic("multipath: numPaths must be >= 1")
	}
	switch alg {
	case SinglePath:
		return &singlePath{path: rng.Intn(numPaths), n: numPaths}
	case RoundRobin:
		return &roundRobin{n: numPaths, next: rng.Intn(numPaths)}
	case DWRR:
		return newDWRR(numPaths, rng)
	case BestRTT:
		return newBestRTT(numPaths, rng)
	case MPRDMA:
		return newMPRDMA(numPaths, rng)
	case OBS:
		return &obs{n: numPaths, rng: rng}
	case Flowlet:
		return newFlowlet(numPaths, rng)
	case PathAware:
		return newPathAware(numPaths, rng)
	case SwitchAR:
		return &switchAR{n: numPaths}
	default:
		panic(fmt.Sprintf("multipath: unknown algorithm %v", alg))
	}
}

// singlePath pins the connection to one path — the legacy RNIC
// behaviour of Problem ⑥.
type singlePath struct {
	path, n int
}

func (s *singlePath) Name() string                           { return SinglePath.String() }
func (s *singlePath) NextPath() int                          { return s.path }
func (s *singlePath) Feedback(int, sim.Duration, bool, bool) {}
func (s *singlePath) NumPaths() int                          { return s.n }

// roundRobin cycles deterministically through all paths.
type roundRobin struct {
	n, next int
}

func (r *roundRobin) Name() string { return RoundRobin.String() }
func (r *roundRobin) NextPath() int {
	p := r.next
	r.next = (r.next + 1) % r.n
	return p
}
func (r *roundRobin) Feedback(int, sim.Duration, bool, bool) {}
func (r *roundRobin) NumPaths() int                          { return r.n }

// obs is Oblivious Packet Spraying: an independent pseudo-random path
// per packet. Its lack of state is what makes it "simple to implement in
// hardware" and, per §7.2, what interacts best with the CC algorithm
// under bursty load.
type obs struct {
	n   int
	rng *sim.RNG
}

func (o *obs) Name() string                           { return OBS.String() }
func (o *obs) NextPath() int                          { return o.rng.Intn(o.n) }
func (o *obs) Feedback(int, sim.Duration, bool, bool) {}
func (o *obs) NumPaths() int                          { return o.n }

// dwrr is Dynamic Weighted Round Robin: deficit round robin whose
// per-path weights track inverse smoothed RTT and collapse on
// congestion signals. Under feedback it concentrates weight on the
// currently-fastest paths — the behaviour that makes it "activate only
// a small number of paths" in Figure 10a.
type dwrr struct {
	n       int
	weights []float64
	deficit []float64
	srtt    []float64 // seconds, EWMA
	cursor  int
}

func newDWRR(n int, rng *sim.RNG) *dwrr {
	d := &dwrr{
		n:       n,
		weights: make([]float64, n),
		deficit: make([]float64, n),
		srtt:    make([]float64, n),
	}
	for i := range d.weights {
		d.weights[i] = 1
	}
	d.cursor = rng.Intn(n)
	return d
}

func (d *dwrr) Name() string  { return DWRR.String() }
func (d *dwrr) NumPaths() int { return d.n }

func (d *dwrr) NextPath() int {
	for round := 0; round < 2*d.n; round++ {
		i := d.cursor
		d.cursor = (d.cursor + 1) % d.n
		d.deficit[i] += d.weights[i]
		if d.deficit[i] >= 1 {
			d.deficit[i]--
			return i
		}
	}
	// Degenerate weights: fall back to the heaviest path.
	best := 0
	for i := 1; i < d.n; i++ {
		if d.weights[i] > d.weights[best] {
			best = i
		}
	}
	return best
}

func (d *dwrr) Feedback(path int, rtt sim.Duration, ecn, lost bool) {
	if path < 0 || path >= d.n {
		return
	}
	const alpha = 0.2
	r := rtt.Seconds()
	if d.srtt[path] == 0 {
		d.srtt[path] = r
	} else {
		d.srtt[path] = (1-alpha)*d.srtt[path] + alpha*r
	}
	switch {
	case lost:
		d.weights[path] *= 0.25
	case ecn:
		d.weights[path] *= 0.5
	default:
		// Weight toward faster paths: inverse RTT normalised to the
		// fastest seen so far.
		min := d.srtt[path]
		for _, v := range d.srtt {
			if v > 0 && v < min {
				min = v
			}
		}
		d.weights[path] = min / d.srtt[path]
	}
	if d.weights[path] < 0.01 {
		d.weights[path] = 0.01
	}
}

// bestRTT always sends on the path with the lowest smoothed RTT,
// probing a random path occasionally so estimates stay alive. It tends
// to herd onto few paths (Figure 9/10's weakness).
type bestRTT struct {
	n     int
	srtt  []float64
	rng   *sim.RNG
	count uint64
}

func newBestRTT(n int, rng *sim.RNG) *bestRTT {
	return &bestRTT{n: n, srtt: make([]float64, n), rng: rng}
}

func (b *bestRTT) Name() string  { return BestRTT.String() }
func (b *bestRTT) NumPaths() int { return b.n }

func (b *bestRTT) NextPath() int {
	b.count++
	if b.count%16 == 0 { // 1/16 probes keep stale paths measurable
		return b.rng.Intn(b.n)
	}
	best, bestV := 0, -1.0
	for i, v := range b.srtt {
		if v == 0 {
			// Unmeasured paths look optimal until proven otherwise —
			// but only the first one wins, which is the herding.
			return i
		}
		if bestV < 0 || v < bestV {
			best, bestV = i, v
		}
	}
	return best
}

func (b *bestRTT) Feedback(path int, rtt sim.Duration, ecn, lost bool) {
	if path < 0 || path >= b.n {
		return
	}
	r := rtt.Seconds()
	if ecn || lost {
		r *= 2 // congestion inflates the effective estimate
	}
	const alpha = 0.25
	if b.srtt[path] == 0 {
		b.srtt[path] = r
	} else {
		b.srtt[path] = (1-alpha)*b.srtt[path] + alpha*r
	}
}

// mprdma approximates MP-RDMA's congestion-aware spraying: round robin
// over paths, skipping any path whose last congestion signal is fresher
// than a cool-down. Unlike DWRR it never concentrates; unlike OBS it
// reacts to marks.
type mprdma struct {
	n        int
	next     int
	cooldown []uint64 // packets remaining before the path is eligible
}

func newMPRDMA(n int, rng *sim.RNG) *mprdma {
	return &mprdma{n: n, next: rng.Intn(n), cooldown: make([]uint64, n)}
}

func (m *mprdma) Name() string  { return MPRDMA.String() }
func (m *mprdma) NumPaths() int { return m.n }

func (m *mprdma) NextPath() int {
	for tries := 0; tries < m.n; tries++ {
		p := m.next
		m.next = (m.next + 1) % m.n
		if m.cooldown[p] == 0 {
			return p
		}
		m.cooldown[p]--
	}
	// Everything cooling down: use the next path anyway.
	p := m.next
	m.next = (m.next + 1) % m.n
	return p
}

func (m *mprdma) Feedback(path int, rtt sim.Duration, ecn, lost bool) {
	if path < 0 || path >= m.n {
		return
	}
	if lost {
		m.cooldown[path] = 8
	} else if ecn {
		m.cooldown[path] = 4
	}
}

// PathRTTBudget is a helper exporting a plausible base RTT for
// low-latency data centers, matching the 250 µs RTO's design point.
const PathRTTBudget = 25 * time.Microsecond
