package multipath

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// WithTrace wraps a selector so every path decision and congestion
// feedback lands in the flight recorder under the "multipath"
// component of the given host's process. The wrapper is pass-through:
// it consumes no randomness and changes no decisions, so a traced run
// is numerically identical to an untraced one. A nil tracer returns
// the selector unwrapped.
func WithTrace(inner Selector, tr *trace.Tracer, host string) Selector {
	if tr == nil {
		return inner
	}
	return &tracedSelector{inner: inner, tr: tr, host: host}
}

type tracedSelector struct {
	inner Selector
	tr    *trace.Tracer
	host  string
}

func (s *tracedSelector) Name() string  { return s.inner.Name() }
func (s *tracedSelector) NumPaths() int { return s.inner.NumPaths() }

// NextPath records the decision as a zero-length slice named after the
// algorithm, so Perfetto's multipath lane reads as a decision log.
func (s *tracedSelector) NextPath() int {
	p := s.inner.NextPath()
	s.tr.Complete(s.host, "multipath", "path", s.inner.Name(), 0, trace.I("path", int64(p)))
	return p
}

// Feedback records only congestion-relevant observations (ECN echo or
// loss) to keep clean-ack volume out of the ring.
func (s *tracedSelector) Feedback(path int, rtt sim.Duration, ecn, lost bool) {
	if ecn || lost {
		s.tr.Instant(s.host, "multipath", "path", "feedback",
			trace.I("path", int64(path)), trace.D("rtt", rtt),
			trace.B("ecn", ecn), trace.B("lost", lost))
	}
	s.inner.Feedback(path, rtt, ecn, lost)
}

// SetClock forwards the virtual clock to the wrapped selector when it
// needs one, keeping the wrapper transparent to the transport's
// ClockedSelector wiring.
func (s *tracedSelector) SetClock(now func() sim.Time) {
	if cs, ok := s.inner.(ClockedSelector); ok {
		cs.SetClock(now)
	}
}

// Unwrap exposes the underlying selector (for tests and stats readers).
func (s *tracedSelector) Unwrap() Selector { return s.inner }
