package multipath

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func countPaths(s Selector, n int) map[int]int {
	got := make(map[int]int)
	for i := 0; i < n; i++ {
		got[s.NextPath()]++
	}
	return got
}

func TestAllSelectorsStayInRange(t *testing.T) {
	for _, alg := range Algorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			f := func(seed uint64, paths uint8) bool {
				n := int(paths%128) + 1
				s := New(alg, n, sim.NewRNG(seed))
				if s.NumPaths() != n {
					return false
				}
				for i := 0; i < 500; i++ {
					p := s.NextPath()
					if p < 0 || p >= n {
						return false
					}
					if i%7 == 0 {
						s.Feedback(p, 20*time.Microsecond, i%3 == 0, i%11 == 0)
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestSinglePathIsConstant(t *testing.T) {
	s := New(SinglePath, 128, sim.NewRNG(1))
	first := s.NextPath()
	for i := 0; i < 100; i++ {
		if s.NextPath() != first {
			t.Fatal("single-path moved")
		}
	}
}

func TestRoundRobinIsUniformAndCyclic(t *testing.T) {
	const n = 8
	s := New(RoundRobin, n, sim.NewRNG(2))
	got := countPaths(s, 8*n)
	for p := 0; p < n; p++ {
		if got[p] != 8 {
			t.Fatalf("rr distribution = %v", got)
		}
	}
}

func TestOBSIsStatisticallyUniform(t *testing.T) {
	const n, trials = 16, 64000
	s := New(OBS, n, sim.NewRNG(3))
	got := countPaths(s, trials)
	want := trials / n
	for p := 0; p < n; p++ {
		if got[p] < want*85/100 || got[p] > want*115/100 {
			t.Errorf("obs path %d: %d picks, want ~%d", p, got[p], want)
		}
	}
}

func TestOBSDecorrelatedAcrossConnections(t *testing.T) {
	rng := sim.NewRNG(4)
	a := New(OBS, 64, rng.Fork(1))
	b := New(OBS, 64, rng.Fork(2))
	same := 0
	for i := 0; i < 1000; i++ {
		if a.NextPath() == b.NextPath() {
			same++
		}
	}
	// Pure chance gives ~1000/64 ≈ 16 collisions.
	if same > 60 {
		t.Errorf("two OBS connections collided on %d/1000 picks", same)
	}
}

func TestBestRTTHerdsWithoutFeedback(t *testing.T) {
	// Figure 10a's pathology: with symmetric paths and sparse feedback,
	// BestRTT concentrates on very few paths.
	s := New(BestRTT, 128, sim.NewRNG(5))
	got := countPaths(s, 1000)
	// Probing is 1/16, so the dominant path should have ~90%+.
	max := 0
	for _, c := range got {
		if c > max {
			max = c
		}
	}
	if max < 800 {
		t.Errorf("best-rtt max path share = %d/1000; expected herding", max)
	}
}

func TestBestRTTMovesAwayFromSlowPath(t *testing.T) {
	s := New(BestRTT, 4, sim.NewRNG(6))
	// Teach it: path 0 slow, others fast.
	s.Feedback(0, time.Millisecond, false, false)
	s.Feedback(1, 10*time.Microsecond, false, false)
	s.Feedback(2, 12*time.Microsecond, false, false)
	s.Feedback(3, 15*time.Microsecond, false, false)
	got := countPaths(s, 320)
	if got[1] < got[0] {
		t.Errorf("best-rtt prefers slow path: %v", got)
	}
}

func TestDWRRConcentratesOnFastPaths(t *testing.T) {
	s := New(DWRR, 8, sim.NewRNG(7))
	// Path 0 fast, path 1 heavily marked, rest slow.
	for i := 0; i < 20; i++ {
		s.Feedback(0, 10*time.Microsecond, false, false)
		s.Feedback(1, 10*time.Microsecond, true, false)
		for p := 2; p < 8; p++ {
			s.Feedback(p, 100*time.Microsecond, false, false)
		}
	}
	got := countPaths(s, 800)
	if got[0] <= got[1] {
		t.Errorf("dwrr favoured the ECN-marked path: %v", got)
	}
	if got[0] <= got[5] {
		t.Errorf("dwrr did not weight toward the fast path: %v", got)
	}
}

func TestDWRRUniformWhenUntrained(t *testing.T) {
	s := New(DWRR, 4, sim.NewRNG(8))
	got := countPaths(s, 400)
	for p := 0; p < 4; p++ {
		if got[p] != 100 {
			t.Fatalf("untrained dwrr not uniform: %v", got)
		}
	}
}

func TestMPRDMASkipsCongestedPaths(t *testing.T) {
	s := New(MPRDMA, 4, sim.NewRNG(9))
	s.Feedback(2, 20*time.Microsecond, false, true) // loss: cooldown 8
	got := countPaths(s, 8)
	if got[2] != 0 {
		t.Errorf("mprdma used a cooling-down path: %v", got)
	}
	// After the cooldown expires it resumes.
	got = countPaths(s, 64)
	if got[2] == 0 {
		t.Errorf("mprdma never resumed path 2: %v", got)
	}
}

func TestMPRDMAAllCoolingStillSends(t *testing.T) {
	s := New(MPRDMA, 2, sim.NewRNG(10))
	s.Feedback(0, time.Microsecond, false, true)
	s.Feedback(1, time.Microsecond, false, true)
	p := s.NextPath()
	if p != 0 && p != 1 {
		t.Error("no path returned when all cooling")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	want := map[Algorithm]string{
		SinglePath: "single-path", RoundRobin: "rr", DWRR: "dwrr",
		BestRTT: "best-rtt", MPRDMA: "mprdma", OBS: "obs",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%v.String() = %q", a, a.String())
		}
	}
	if len(Algorithms()) != 6 {
		t.Error("Algorithms() incomplete")
	}
}

func TestFeedbackIgnoresBadPath(t *testing.T) {
	for _, alg := range Algorithms() {
		s := New(alg, 4, sim.NewRNG(11))
		s.Feedback(-1, time.Microsecond, false, false)
		s.Feedback(99, time.Microsecond, true, true)
		p := s.NextPath()
		if p < 0 || p >= 4 {
			t.Errorf("%s broken by out-of-range feedback", s.Name())
		}
	}
}
