package multipath

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestFlowletSticksWithoutGap(t *testing.T) {
	// Back-to-back packets (bulk RDMA) never open a flowlet boundary:
	// the selector behaves like single-path.
	f := newFlowlet(64, sim.NewRNG(1))
	var now sim.Time
	f.SetClock(func() sim.Time { return now })
	first := f.NextPath()
	for i := 0; i < 1000; i++ {
		now = now.Add(time.Microsecond) // 1 µs spacing << 50 µs gap
		if f.NextPath() != first {
			t.Fatal("flowlet switched paths mid-burst")
		}
	}
	if f.Switches() != 0 {
		t.Errorf("Switches = %d during a continuous burst", f.Switches())
	}
}

func TestFlowletSwitchesAfterGap(t *testing.T) {
	f := newFlowlet(64, sim.NewRNG(2))
	var now sim.Time
	f.SetClock(func() sim.Time { return now })
	seen := map[int]bool{f.NextPath(): true}
	for i := 0; i < 50; i++ {
		now = now.Add(time.Millisecond) // every send follows a long gap
		seen[f.NextPath()] = true
	}
	if len(seen) < 10 {
		t.Errorf("flowlet used only %d paths despite 50 gaps", len(seen))
	}
	if f.Switches() == 0 {
		t.Error("no flowlet boundaries recorded")
	}
}

func TestFlowletWithoutClockIsSinglePath(t *testing.T) {
	// The transport wires clocks in; a clockless flowlet must not
	// misbehave — frozen time means no gaps, one path.
	s := New(Flowlet, 16, sim.NewRNG(3))
	first := s.NextPath()
	for i := 0; i < 100; i++ {
		if s.NextPath() != first {
			t.Fatal("clockless flowlet moved")
		}
	}
}

func TestPathAwareAvoidsCongestedPaths(t *testing.T) {
	p := newPathAware(8, sim.NewRNG(4))
	p.Feedback(3, 20*time.Microsecond, false, true) // loss on path 3
	hits := 0
	for i := 0; i < 32; i++ {
		if p.NextPath() == 3 {
			hits++
		}
	}
	if hits > 4 {
		t.Errorf("path-aware used a lost path %d/32 times", hits)
	}
}

func TestPathAwareRecyclesCleanPaths(t *testing.T) {
	p := newPathAware(128, sim.NewRNG(5))
	p.Feedback(42, 20*time.Microsecond, false, false) // clean ack
	if got := p.NextPath(); got != 42 {
		t.Errorf("NextPath = %d, want recycled 42", got)
	}
}

func TestPathAwareRecycleSkipsCooling(t *testing.T) {
	p := newPathAware(8, sim.NewRNG(6))
	p.Feedback(2, 20*time.Microsecond, false, false) // recycled
	p.Feedback(2, 20*time.Microsecond, true, false)  // then marked
	if got := p.NextPath(); got == 2 {
		t.Error("recycled a path that later got marked")
	}
}

func TestExtraAlgorithmsRegistered(t *testing.T) {
	if Flowlet.String() != "flowlet" || PathAware.String() != "path-aware" {
		t.Error("algorithm strings")
	}
	all := AllAlgorithms()
	if len(all) != len(Algorithms())+2 {
		t.Errorf("AllAlgorithms length = %d", len(all))
	}
	for _, alg := range []Algorithm{Flowlet, PathAware} {
		s := New(alg, 16, sim.NewRNG(7))
		for i := 0; i < 200; i++ {
			p := s.NextPath()
			if p < 0 || p >= 16 {
				t.Fatalf("%s out of range", s.Name())
			}
			s.Feedback(p, 10*time.Microsecond, i%5 == 0, i%13 == 0)
		}
	}
	if _, ok := New(Flowlet, 4, sim.NewRNG(8)).(ClockedSelector); !ok {
		t.Error("flowlet does not implement ClockedSelector")
	}
}
