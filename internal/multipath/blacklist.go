package multipath

import "repro/internal/sim"

// Blacklist defaults: probe a quarantined path every 16th pick, and
// auto-quarantine a path after 3 consecutive losses on it.
const (
	DefaultProbeEvery = 16
	DefaultLossStreak = 3
)

// WithBlacklist wraps a selector with a path-health mask. Paths marked
// down — by the chaos wiring on a fault event, or automatically after a
// loss streak — are skipped, except that every ProbeEvery-th pick sends
// a probe down one quarantined path; a clean ack on a quarantined path
// reinstates it. With no quarantined paths the wrapper is pass-through,
// so a healthy run is numerically identical to an unwrapped one.
func WithBlacklist(inner Selector) *Blacklist {
	return &Blacklist{
		inner:       inner,
		down:        make([]bool, inner.NumPaths()),
		streak:      make([]int, inner.NumPaths()),
		probeEvery:  DefaultProbeEvery,
		streakLimit: DefaultLossStreak,
	}
}

// Blacklist is the quarantining selector wrapper; see WithBlacklist.
type Blacklist struct {
	inner Selector

	down  []bool
	nDown int
	// streak counts consecutive losses per path; streakLimit trips the
	// auto-quarantine.
	streak      []int
	streakLimit int

	// Every probeEvery-th pick (while anything is quarantined) probes a
	// quarantined path, rotating through them with probeCursor.
	probeEvery  int
	probeCursor int
	picks       uint64
}

func (b *Blacklist) Name() string  { return b.inner.Name() }
func (b *Blacklist) NumPaths() int { return b.inner.NumPaths() }

// NextPath skips quarantined paths, except for periodic probes that
// test whether one has come back.
func (b *Blacklist) NextPath() int {
	if b.nDown == 0 {
		return b.inner.NextPath()
	}
	b.picks++
	if b.picks%uint64(b.probeEvery) == 0 {
		if p := b.nextDown(); p >= 0 {
			return p
		}
	}
	// All paths down: nothing healthy to skip to, let the inner pick
	// stand (it will be lost, keeping RTO/loss machinery honest).
	if b.nDown == len(b.down) {
		return b.inner.NextPath()
	}
	for tries := 0; tries < 4*len(b.down); tries++ {
		p := b.inner.NextPath()
		if !b.down[p] {
			return p
		}
	}
	// Inner selector is pinned to a dead path (e.g. single-path):
	// deterministically step to the first healthy one.
	for p := range b.down {
		if !b.down[p] {
			return p
		}
	}
	return b.inner.NextPath()
}

// nextDown rotates through quarantined paths for probing.
func (b *Blacklist) nextDown() int {
	n := len(b.down)
	for i := 0; i < n; i++ {
		p := (b.probeCursor + i) % n
		if b.down[p] {
			b.probeCursor = (p + 1) % n
			return p
		}
	}
	return -1
}

// Feedback reinstates a quarantined path on a clean ack, trips the
// auto-quarantine on a loss streak, and forwards to the inner selector.
func (b *Blacklist) Feedback(path int, rtt sim.Duration, ecn, lost bool) {
	if path >= 0 && path < len(b.down) {
		if lost {
			b.streak[path]++
			if b.streak[path] >= b.streakLimit {
				b.MarkDown(path)
			}
		} else {
			b.streak[path] = 0
			if b.down[path] {
				b.MarkUp(path)
			}
		}
	}
	b.inner.Feedback(path, rtt, ecn, lost)
}

// MarkDown quarantines a path (idempotent). The chaos wiring calls this
// when a fault takes out the fabric resources behind it.
func (b *Blacklist) MarkDown(path int) {
	if path < 0 || path >= len(b.down) || b.down[path] {
		return
	}
	b.down[path] = true
	b.nDown++
}

// MarkUp reinstates a path (idempotent).
func (b *Blacklist) MarkUp(path int) {
	if path < 0 || path >= len(b.down) || !b.down[path] {
		return
	}
	b.down[path] = false
	b.streak[path] = 0
	b.nDown--
}

// Down reports whether a path is currently quarantined.
func (b *Blacklist) Down(path int) bool {
	return path >= 0 && path < len(b.down) && b.down[path]
}

// NumDown returns how many paths are quarantined.
func (b *Blacklist) NumDown() int { return b.nDown }

// SetClock forwards the virtual clock to the wrapped selector, keeping
// the wrapper transparent to the transport's ClockedSelector wiring.
func (b *Blacklist) SetClock(now func() sim.Time) {
	if cs, ok := b.inner.(ClockedSelector); ok {
		cs.SetClock(now)
	}
}

// Unwrap exposes the underlying selector.
func (b *Blacklist) Unwrap() Selector { return b.inner }
