package multipath_test

import (
	"fmt"

	"repro/internal/multipath"
	"repro/internal/sim"
)

// ExampleNew shows the production configuration: Oblivious Packet
// Spraying over 128 paths, one selector per connection.
func ExampleNew() {
	sel := multipath.New(multipath.OBS, 128, sim.NewRNG(42))
	fmt.Println(sel.Name(), sel.NumPaths())
	inRange := true
	for i := 0; i < 1000; i++ {
		if p := sel.NextPath(); p < 0 || p >= 128 {
			inRange = false
		}
	}
	fmt.Println("all picks in range:", inRange)
	// Output:
	// obs 128
	// all picks in range: true
}

// ExampleAlgorithms enumerates the §7.2 policy sweep.
func ExampleAlgorithms() {
	for _, a := range multipath.Algorithms() {
		fmt.Println(a)
	}
	// Output:
	// single-path
	// rr
	// dwrr
	// best-rtt
	// mprdma
	// obs
}
