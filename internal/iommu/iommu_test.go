package iommu

import (
	"errors"
	"testing"

	"repro/internal/addr"
	"repro/internal/pagetable"
)

func newTestIOMMU(t *testing.T, cfg Config) *IOMMU {
	t.Helper()
	u, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestTranslateHitMissFault(t *testing.T) {
	u := newTestIOMMU(t, Config{Mode: ModeNoPT})
	if _, err := u.Map(addr.NewDARange(0x10000, addr.PageSize4K), addr.HPA(0xA0000)); err != nil {
		t.Fatal(err)
	}

	// First access: IOTLB miss, page walk.
	hpa, cost1, err := u.Translate(0x10010)
	if err != nil || hpa != 0xA0010 {
		t.Fatalf("Translate = %v,%v", hpa, err)
	}
	if u.Walks() != 1 {
		t.Errorf("Walks = %d, want 1", u.Walks())
	}

	// Second access to same page: IOTLB hit, cheaper.
	_, cost2, err := u.Translate(0x10020)
	if err != nil {
		t.Fatal(err)
	}
	if cost2 >= cost1 {
		t.Errorf("IOTLB hit cost %v not cheaper than miss cost %v", cost2, cost1)
	}
	if u.Walks() != 1 {
		t.Errorf("Walks after hit = %d, want 1", u.Walks())
	}

	// Unmapped address faults.
	if _, _, err := u.Translate(0xDEAD0000); !errors.Is(err, ErrFault) {
		t.Errorf("fault err = %v", err)
	}
	if u.Faults() != 1 {
		t.Errorf("Faults = %d", u.Faults())
	}
}

func TestPTModePassthrough(t *testing.T) {
	u := newTestIOMMU(t, Config{Mode: ModePT})
	hpa, cost, err := u.Translate(0x123456)
	if err != nil || hpa != 0x123456 || cost != 0 {
		t.Errorf("pt passthrough = %v,%v,%v", hpa, cost, err)
	}
	if !u.Mapped(0x99999) {
		t.Error("pt mode should report everything mapped")
	}
}

func TestATSPTConflict(t *testing.T) {
	_, err := New(Config{Mode: ModePT, ATSEnabled: true, PlatformATSPTConflict: true})
	if !errors.Is(err, ErrATSConflict) {
		t.Errorf("err = %v, want ErrATSConflict", err)
	}
	// Without the platform quirk, pt+ATS is allowed.
	if _, err := New(Config{Mode: ModePT, ATSEnabled: true}); err != nil {
		t.Errorf("unexpected conflict: %v", err)
	}
	// nopt+ATS always works (the paper's production setting).
	if _, err := New(Config{Mode: ModeNoPT, ATSEnabled: true, PlatformATSPTConflict: true}); err != nil {
		t.Errorf("nopt+ATS err = %v", err)
	}
}

func TestATSTranslate(t *testing.T) {
	u := newTestIOMMU(t, Config{Mode: ModeNoPT, ATSEnabled: true})
	u.Map(addr.NewDARange(0x2000, addr.PageSize4K), addr.HPA(0xB000))
	hpa, cost, err := u.ATSTranslate(0x2004)
	if err != nil || hpa != 0xB004 {
		t.Fatalf("ATSTranslate = %v,%v", hpa, err)
	}
	_, plainCost, _ := u.Translate(0x2008)
	if cost <= plainCost {
		t.Errorf("ATS cost %v should exceed local translate cost %v (PCIe round trip)", cost, plainCost)
	}
	if u.ATSRequests() != 1 {
		t.Errorf("ATSRequests = %d", u.ATSRequests())
	}
}

func TestATSDisabled(t *testing.T) {
	u := newTestIOMMU(t, Config{Mode: ModeNoPT, ATSEnabled: false})
	if _, _, err := u.ATSTranslate(0x1000); !errors.Is(err, ErrATSDisabled) {
		t.Errorf("err = %v, want ErrATSDisabled", err)
	}
}

func TestUnmapInvalidatesIOTLB(t *testing.T) {
	u := newTestIOMMU(t, Config{Mode: ModeNoPT})
	u.Map(addr.NewDARange(0x3000, addr.PageSize4K), addr.HPA(0xC000))
	u.Translate(0x3000) // warm the IOTLB
	if err := u.Unmap(0x3000); err != nil {
		t.Fatal(err)
	}
	if _, _, err := u.Translate(0x3000); !errors.Is(err, ErrFault) {
		t.Errorf("stale IOTLB entry served after Unmap: err = %v", err)
	}
	if err := u.Unmap(0x3000); !errors.Is(err, pagetable.ErrNotFound) {
		t.Errorf("double Unmap err = %v", err)
	}
	// Unmap must be by exact start.
	u.Map(addr.NewDARange(0x4000, 2*addr.PageSize4K), addr.HPA(0xD000))
	if err := u.Unmap(0x5000); !errors.Is(err, pagetable.ErrNotFound) {
		t.Errorf("mid-range Unmap err = %v", err)
	}
}

func TestIOTLBThrashRaisesWalks(t *testing.T) {
	// Working set larger than IOTLB: every sequential access walks. This
	// is the mechanism behind Figure 8's >32 MB degradation.
	u := newTestIOMMU(t, Config{Mode: ModeNoPT, IOTLBCapacity: 64})
	const pages = 128
	u.Map(addr.NewDARange(0, pages*addr.PageSize4K), addr.HPA(1<<30))
	for round := 0; round < 4; round++ {
		for p := uint64(0); p < pages; p++ {
			if _, _, err := u.Translate(addr.DA(p * addr.PageSize4K)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if u.IOTLB().Hits() != 0 {
		t.Errorf("over-capacity sequential scan got %d IOTLB hits, want 0", u.IOTLB().Hits())
	}
	if u.Walks() != 4*pages {
		t.Errorf("Walks = %d, want %d", u.Walks(), 4*pages)
	}
}

func TestMapOverlapRejected(t *testing.T) {
	u := newTestIOMMU(t, Config{Mode: ModeNoPT})
	if _, err := u.Map(addr.NewDARange(0x1000, addr.PageSize2M), addr.HPA(0x100000)); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Map(addr.NewDARange(0x1000+addr.PageSize4K, addr.PageSize4K), addr.HPA(0x200000)); !errors.Is(err, pagetable.ErrOverlap) {
		t.Errorf("overlap err = %v", err)
	}
	if u.Entries() != 1 {
		t.Errorf("Entries = %d", u.Entries())
	}
}

func TestLookupRange(t *testing.T) {
	u := newTestIOMMU(t, Config{Mode: ModeNoPT})
	u.Map(addr.NewDARange(0x8000, addr.PageSize2M), addr.HPA(0xF0000))
	src, hpa, ok := u.LookupRange(0x8000 + 0x1234)
	if !ok || src.Start != 0x8000 || hpa != 0xF0000 {
		t.Errorf("LookupRange = %v,%v,%v", src, hpa, ok)
	}
	if _, _, ok := u.LookupRange(0x1); ok {
		t.Error("LookupRange hit on unmapped address")
	}
}

func TestModeString(t *testing.T) {
	if ModePT.String() != "pt" || ModeNoPT.String() != "nopt" {
		t.Error("Mode strings")
	}
}
