// Package iommu models the Input-Output Memory Management Unit in the
// Root Complex: the DA/GPA→HPA translation table, the IOTLB that caches
// walks, and the Address Translation Service (ATS) responder that PCIe
// devices query (Figure 1c, step ④). Its cost model produces the IOTLB
// pressure the paper measures with pcm-iio in Figure 8.
package iommu

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/addr"
	"repro/internal/pagetable"
	"repro/internal/sim"
)

// Mode selects the kernel iommu= setting. The paper's Problem ④ (§3.1)
// is that on some platforms ATS cannot be enabled in pt mode, forcing
// nopt and hurting host TCP DMA.
type Mode uint8

const (
	// ModeNoPT translates every device access through the IOMMU table.
	ModeNoPT Mode = iota
	// ModePT passes device addresses through untranslated (DA == HPA).
	ModePT
)

func (m Mode) String() string {
	switch m {
	case ModeNoPT:
		return "nopt"
	case ModePT:
		return "pt"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Errors returned by the IOMMU.
var (
	ErrFault       = errors.New("iommu: translation fault")
	ErrATSDisabled = errors.New("iommu: ATS not available")
	ErrATSConflict = errors.New("iommu: ATS cannot be enabled in pt mode on this platform")
)

// Config parameterises the IOMMU model.
type Config struct {
	Mode Mode
	// ATSEnabled allows devices to issue translation requests and cache
	// results in their ATC.
	ATSEnabled bool
	// PlatformATSPTConflict reproduces the server model from Problem ④
	// where ATS and iommu=pt are mutually exclusive.
	PlatformATSPTConflict bool

	// IOTLBCapacity is the number of page translations the IOTLB holds.
	IOTLBCapacity int
	// IOTLBHitLatency is the translation cost on an IOTLB hit.
	IOTLBHitLatency sim.Duration
	// PageWalkLatency is the added cost of walking the I/O page table on
	// an IOTLB miss.
	PageWalkLatency sim.Duration
	// ATSRequestLatency is the PCIe round-trip a device pays to ask the
	// IOMMU for a translation (on top of hit/walk cost).
	ATSRequestLatency sim.Duration
	// MapLatency is the host-side cost of installing one mapping entry
	// (IOMMU register programming, not page pinning — that is billed by
	// internal/mem).
	MapLatency sim.Duration
	// PageSize is the translation granularity for the IOTLB.
	PageSize uint64
}

// DefaultConfig returns latencies representative of a current x86 server.
func DefaultConfig() Config {
	return Config{
		Mode:              ModeNoPT,
		ATSEnabled:        true,
		IOTLBCapacity:     8192,
		IOTLBHitLatency:   60 * time.Nanosecond,
		PageWalkLatency:   320 * time.Nanosecond,
		ATSRequestLatency: 700 * time.Nanosecond,
		MapLatency:        2 * time.Microsecond,
		PageSize:          addr.PageSize4K,
	}
}

// IOMMU is one Root Complex IOMMU instance.
type IOMMU struct {
	cfg   Config
	table *pagetable.Table
	iotlb *pagetable.TLB

	walks       uint64
	atsRequests uint64
	faults      uint64
}

// New builds an IOMMU. It returns ErrATSConflict if the configuration
// asks for ATS in pt mode on a conflicted platform (Problem ④), so the
// caller must choose: nopt (hurting host TCP) or no ATS (hurting GDR).
func New(cfg Config) (*IOMMU, error) {
	d := DefaultConfig()
	if cfg.IOTLBCapacity == 0 {
		cfg.IOTLBCapacity = d.IOTLBCapacity
	}
	if cfg.IOTLBHitLatency == 0 {
		cfg.IOTLBHitLatency = d.IOTLBHitLatency
	}
	if cfg.PageWalkLatency == 0 {
		cfg.PageWalkLatency = d.PageWalkLatency
	}
	if cfg.ATSRequestLatency == 0 {
		cfg.ATSRequestLatency = d.ATSRequestLatency
	}
	if cfg.MapLatency == 0 {
		cfg.MapLatency = d.MapLatency
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = d.PageSize
	}
	if cfg.ATSEnabled && cfg.Mode == ModePT && cfg.PlatformATSPTConflict {
		return nil, ErrATSConflict
	}
	return &IOMMU{
		cfg:   cfg,
		table: pagetable.New("iommu"),
		iotlb: pagetable.NewTLB(cfg.IOTLBCapacity, cfg.PageSize),
	}, nil
}

// Config returns the active configuration.
func (u *IOMMU) Config() Config { return u.cfg }

// Walks returns the number of I/O page-table walks performed.
func (u *IOMMU) Walks() uint64 { return u.walks }

// ATSRequests returns how many device translation requests were served.
func (u *IOMMU) ATSRequests() uint64 { return u.atsRequests }

// Faults returns the number of failed translations.
func (u *IOMMU) Faults() uint64 { return u.faults }

// IOTLB exposes the translation cache for counter inspection.
func (u *IOMMU) IOTLB() *pagetable.TLB { return u.iotlb }

// Map installs a DA→HPA mapping and returns the programming cost.
func (u *IOMMU) Map(da addr.DARange, hpa addr.HPA) (sim.Duration, error) {
	if err := u.table.Map(da.Range, uint64(hpa)); err != nil {
		return 0, err
	}
	return u.cfg.MapLatency, nil
}

// Unmap removes the mapping starting at da and invalidates the IOTLB
// pages it covered.
func (u *IOMMU) Unmap(da addr.DA) error {
	src, _, ok := u.table.LookupRange(uint64(da))
	if !ok || src.Start != uint64(da) {
		return fmt.Errorf("%w: unmap %v", pagetable.ErrNotFound, da)
	}
	if err := u.table.Unmap(uint64(da)); err != nil {
		return err
	}
	u.iotlb.InvalidateRange(src.Start, src.Size)
	return nil
}

// Mapped reports whether da has a translation installed.
func (u *IOMMU) Mapped(da addr.DA) bool {
	_, ok := u.table.Translate(uint64(da))
	return ok || u.cfg.Mode == ModePT
}

// LookupRange returns the mapping entry covering da, if any.
func (u *IOMMU) LookupRange(da addr.DA) (addr.DARange, addr.HPA, bool) {
	src, dst, ok := u.table.LookupRange(uint64(da))
	return addr.DARange{Range: src}, addr.HPA(dst), ok
}

// Entries returns the number of installed mappings.
func (u *IOMMU) Entries() int { return u.table.Len() }

// Translate resolves a device address to an HPA, charging IOTLB/walk
// costs. In pt mode the address passes through for free.
func (u *IOMMU) Translate(da addr.DA) (addr.HPA, sim.Duration, error) {
	if u.cfg.Mode == ModePT {
		return addr.HPA(da), 0, nil
	}
	if hpa, ok := u.iotlb.Lookup(uint64(da)); ok {
		return addr.HPA(hpa), u.cfg.IOTLBHitLatency, nil
	}
	hpa, ok := u.table.Translate(uint64(da))
	if !ok {
		u.faults++
		return 0, u.cfg.IOTLBHitLatency + u.cfg.PageWalkLatency,
			fmt.Errorf("%w: %v", ErrFault, da)
	}
	u.walks++
	u.iotlb.Insert(uint64(da), hpa)
	return addr.HPA(hpa), u.cfg.IOTLBHitLatency + u.cfg.PageWalkLatency, nil
}

// ATSTranslate serves a device's Address Translation Service request
// (Figure 1c step ④): the device pays the PCIe round trip plus the
// IOMMU-side translation cost, and caches the result in its own ATC.
func (u *IOMMU) ATSTranslate(da addr.DA) (addr.HPA, sim.Duration, error) {
	if !u.cfg.ATSEnabled {
		return 0, 0, ErrATSDisabled
	}
	u.atsRequests++
	hpa, cost, err := u.Translate(da)
	return hpa, cost + u.cfg.ATSRequestLatency, err
}
