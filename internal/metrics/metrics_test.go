package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value() = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Error("Reset did not zero")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("concurrent Value() = %d, want 8000", c.Value())
	}
}

func TestGaugeTracksMax(t *testing.T) {
	var g Gauge
	g.Add(5)
	g.Add(10)
	g.Add(-12)
	if g.Value() != 3 {
		t.Errorf("Value() = %d, want 3", g.Value())
	}
	if g.Max() != 15 {
		t.Errorf("Max() = %d, want 15", g.Max())
	}
	g.Set(100)
	if g.Max() != 100 {
		t.Errorf("Max() after Set = %d, want 100", g.Max())
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 50.5 {
		t.Errorf("Mean = %v, want 50.5", h.Mean())
	}
	if h.Quantile(0.5) != 50 {
		t.Errorf("p50 = %v, want 50", h.Quantile(0.5))
	}
	if h.Quantile(0.99) != 99 {
		t.Errorf("p99 = %v, want 99", h.Quantile(0.99))
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if h.Sum() != 5050 {
		t.Errorf("Sum = %v", h.Sum())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Stddev() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	var h Histogram
	h.Observe(10)
	_ = h.Quantile(0.5)
	h.Observe(1) // must re-sort
	if h.Min() != 1 {
		t.Errorf("Min after late observe = %v, want 1", h.Min())
	}
}

func TestHistogramStddev(t *testing.T) {
	var h Histogram
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Observe(v)
	}
	if got := h.Stddev(); got < 1.99 || got > 2.01 {
		t.Errorf("Stddev = %v, want 2", got)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		for _, v := range vals {
			h.Observe(v)
		}
		return h.Quantile(0.1) <= h.Quantile(0.5) &&
			h.Quantile(0.5) <= h.Quantile(0.9) &&
			h.Min() <= h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegistryIdentityAndDump(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a/x")
	c2 := r.Counter("a/x")
	if c1 != c2 {
		t.Error("same name returned different counters")
	}
	c1.Add(3)
	r.Gauge("a/g").Set(7)
	r.Histogram("a/h").Observe(1.5)
	dump := r.Dump()
	for _, want := range []string{"counter a/x 3", "gauge a/g 7", "hist a/h n=1"} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump missing %q:\n%s", want, dump)
		}
	}
}
