// Package metrics provides the counters, histograms and time series used
// by every experiment harness in the repository. It mirrors the role that
// Neohost, pcm-iio and the authors' online monitoring play in the paper:
// the figures are all read off counters like these.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. Lock-free: hot paths
// (per-packet, per-TLP) bump counters, so contention on a mutex would
// dominate the work being counted.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a value that can move both ways, tracking its maximum.
// Value and maximum are updated lock-free; the high-water mark is
// maintained with a CAS loop, so Max never reports less than the
// largest level Add/Set ever produced.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// raiseMax lifts the high-water mark to at least v.
func (g *Gauge) raiseMax(v int64) {
	for {
		cur := g.max.Load()
		if v <= cur || g.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Add moves the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	g.raiseMax(g.v.Add(delta))
}

// Set assigns the gauge.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	g.raiseMax(v)
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// Histogram accumulates float64 samples and answers summary queries. It
// stores raw samples (experiments here are small enough) so percentiles
// are exact.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
	sum     float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sorted = false
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Sum returns the total of all samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

func (h *Histogram) ensureSortedLocked() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) by nearest-rank, or 0
// with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	h.ensureSortedLocked()
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Stddev returns the population standard deviation.
func (h *Histogram) Stddev() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	mean := h.sum / float64(n)
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sum = 0
	h.sorted = true
	h.mu.Unlock()
}

// Registry is a named collection of metrics so components can expose
// counters by path ("rnic0/atc_miss") and harnesses can print them all.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Dump renders every metric as "name value" lines sorted by name,
// suitable for test logs and CLI output.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %d max=%d", name, g.Value(), g.Max()))
	}
	for name, h := range r.histograms {
		lines = append(lines, fmt.Sprintf("hist %s n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f",
			name, h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max()))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
