// Package gpu models the GPU as a PCIe endpoint: device memory exposed
// through a BAR (the GDR target), command queues fetched by DMA, and a
// DMA engine that issues untranslated TLPs through the fabric. It is
// deliberately not a compute model — every figure in the paper that
// involves a GPU depends only on its memory and DMA behaviour.
package gpu

import (
	"errors"
	"fmt"

	"repro/internal/addr"
	"repro/internal/pcie"
	"repro/internal/sim"
)

// Errors returned by the GPU model.
var (
	ErrOutOfDeviceMemory = errors.New("gpu: device memory exhausted")
	ErrCorruptFetch      = errors.New("gpu: command fetch reached a non-memory target")
	ErrFreeUnknown       = errors.New("gpu: free of unknown allocation")
)

// GPU is one device instance.
type GPU struct {
	name    string
	ep      *pcie.Endpoint
	complex *pcie.Complex
	bar     addr.HPARange

	next   uint64
	allocs map[uint64]uint64 // offset -> size
}

// New attaches a GPU with memBytes of device memory under sw.
func New(c *pcie.Complex, sw *pcie.Switch, name string, memBytes uint64) (*GPU, error) {
	ep, err := sw.AttachEndpoint(name)
	if err != nil {
		return nil, err
	}
	window := c.AllocBARWindow(memBytes)
	if err := ep.AddBAR(pcie.BAR{Window: window, Owner: addr.OwnerGPU, Name: name + "-mem"}); err != nil {
		return nil, err
	}
	return &GPU{
		name:    name,
		ep:      ep,
		complex: c,
		bar:     window,
		allocs:  make(map[uint64]uint64),
	}, nil
}

// Name returns the device label.
func (g *GPU) Name() string { return g.name }

// Endpoint returns the PCIe endpoint.
func (g *GPU) Endpoint() *pcie.Endpoint { return g.ep }

// BAR returns the device-memory window in HPA space.
func (g *GPU) BAR() addr.HPARange { return g.bar }

// AllocDeviceMemory reserves size bytes of device memory, returning its
// HPA window inside the BAR (what an RNIC targets for GDR).
func (g *GPU) AllocDeviceMemory(size uint64) (addr.HPARange, error) {
	size = addr.AlignUp(size, addr.PageSize4K)
	if g.next+size > g.bar.Size {
		return addr.HPARange{}, fmt.Errorf("%w: want %d, free %d", ErrOutOfDeviceMemory, size, g.bar.Size-g.next)
	}
	off := g.next
	g.next += size
	g.allocs[off] = size
	return addr.NewHPARange(addr.HPA(g.bar.Start+off), size), nil
}

// FreeDeviceMemory releases an allocation by its HPA window.
func (g *GPU) FreeDeviceMemory(r addr.HPARange) error {
	off := r.Start - g.bar.Start
	if _, ok := g.allocs[off]; !ok {
		return fmt.Errorf("%w: %v", ErrFreeUnknown, r)
	}
	delete(g.allocs, off)
	return nil
}

// AllocatedBytes reports total live device-memory allocations.
func (g *GPU) AllocatedBytes() uint64 {
	var n uint64
	for _, s := range g.allocs {
		n += s
	}
	return n
}

// DMARead issues an untranslated DMA read of size bytes at device
// address da (e.g. fetching a command queue from guest memory). The
// IOMMU resolves the DA; the returned delivery says where the read
// actually landed.
func (g *GPU) DMARead(da addr.DA, size uint64) (pcie.Delivery, error) {
	return g.complex.DMA(pcie.TLP{Source: g.ep, Addr: uint64(da), Size: size, AT: pcie.ATUntranslated})
}

// DMAWrite issues an untranslated DMA write (e.g. GPUDirect Async
// ringing an RNIC doorbell through the IOMMU).
func (g *GPU) DMAWrite(da addr.DA, size uint64) (pcie.Delivery, error) {
	return g.complex.DMA(pcie.TLP{Source: g.ep, Addr: uint64(da), Size: size, AT: pcie.ATUntranslated, Write: true})
}

// FetchCommands models the GPU reading its command queue at da. A fetch
// that routes anywhere but main memory is the corruption of Figure 5
// step 5 — the GPU reading the RNIC's doorbell register as if it were
// commands — and returns ErrCorruptFetch with the delivery attached.
func (g *GPU) FetchCommands(da addr.DA, size uint64) (pcie.Delivery, sim.Duration, error) {
	d, err := g.DMARead(da, size)
	if err != nil {
		return d, 0, err
	}
	if d.Route != pcie.RouteToMemory {
		return d, d.Latency, fmt.Errorf("%w: command fetch at %v landed on %s via %s",
			ErrCorruptFetch, da, d.Target.Name(), d.Route)
	}
	return d, d.Latency, nil
}
