package gpu

import (
	"errors"
	"testing"

	"repro/internal/addr"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/pcie"
)

func testSetup(t *testing.T) (*pcie.Complex, *pcie.Switch, *GPU, *mem.Memory) {
	t.Helper()
	u, err := iommu.New(iommu.Config{Mode: iommu.ModeNoPT, ATSEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(mem.Config{TotalBytes: 1 << 30})
	c := pcie.NewComplex(pcie.Config{}, u, m)
	sw := c.AddSwitch("sw0")
	g, err := New(c, sw, "gpu0", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	return c, sw, g, m
}

func TestAllocDeviceMemory(t *testing.T) {
	_, _, g, _ := testSetup(t)
	a, err := g.AllocDeviceMemory(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if !g.BAR().ContainsRange(a.Range) {
		t.Errorf("allocation %v outside BAR %v", a, g.BAR())
	}
	b, err := g.AllocDeviceMemory(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if a.Overlaps(b.Range) {
		t.Error("device allocations overlap")
	}
	if g.AllocatedBytes() != 2<<20 {
		t.Errorf("AllocatedBytes = %d", g.AllocatedBytes())
	}
	if err := g.FreeDeviceMemory(a); err != nil {
		t.Fatal(err)
	}
	if err := g.FreeDeviceMemory(a); !errors.Is(err, ErrFreeUnknown) {
		t.Errorf("double free err = %v", err)
	}
}

func TestAllocDeviceMemoryExhaustion(t *testing.T) {
	_, _, g, _ := testSetup(t)
	if _, err := g.AllocDeviceMemory(128 << 20); !errors.Is(err, ErrOutOfDeviceMemory) {
		t.Errorf("err = %v, want ErrOutOfDeviceMemory", err)
	}
}

func TestFetchCommandsFromMemory(t *testing.T) {
	c, _, g, m := testSetup(t)
	cmdq, err := m.Allocate(addr.PageSize4K, "cmdq")
	if err != nil {
		t.Fatal(err)
	}
	const da = 0x40000000
	if _, err := c.IOMMU().Map(addr.NewDARange(da, addr.PageSize4K), addr.HPA(cmdq.HPA.Start)); err != nil {
		t.Fatal(err)
	}
	d, lat, err := g.FetchCommands(da, 256)
	if err != nil {
		t.Fatal(err)
	}
	if d.Route != pcie.RouteToMemory || lat <= 0 {
		t.Errorf("fetch = %+v lat=%v", d, lat)
	}
}

func TestFetchCommandsCorruption(t *testing.T) {
	// Figure 5 step 5: the IOMMU maps the command-queue DA onto another
	// device's register BAR; the fetch must be flagged as corrupt.
	c, sw, g, _ := testSetup(t)
	rnicEP, err := sw.AttachEndpoint("rnic0")
	if err != nil {
		t.Fatal(err)
	}
	dbWindow := c.AllocBARWindow(addr.PageSize4K)
	if err := rnicEP.AddBAR(pcie.BAR{Window: dbWindow, Owner: addr.OwnerHostMemory, Name: "rnic-db"}); err != nil {
		t.Fatal(err)
	}
	const da = 0x50000000
	if _, err := c.IOMMU().Map(addr.NewDARange(da, addr.PageSize4K), addr.HPA(dbWindow.Start)); err != nil {
		t.Fatal(err)
	}
	_, _, err = g.FetchCommands(da, 64)
	if !errors.Is(err, ErrCorruptFetch) {
		t.Errorf("err = %v, want ErrCorruptFetch", err)
	}
}

func TestDMAWriteDoorbell(t *testing.T) {
	// GPUDirect Async: the GPU writes an RNIC doorbell through the IOMMU.
	c, sw, g, _ := testSetup(t)
	rnicEP, _ := sw.AttachEndpoint("rnic0")
	dbWindow := c.AllocBARWindow(addr.PageSize4K)
	rnicEP.AddBAR(pcie.BAR{Window: dbWindow, Owner: addr.OwnerHostMemory, Name: "rnic-db"})
	const da = 0x60000000
	c.IOMMU().Map(addr.NewDARange(da, addr.PageSize4K), addr.HPA(dbWindow.Start))
	d, err := g.DMAWrite(da, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Target == nil || d.Target.Name() != "rnic0" {
		t.Errorf("doorbell write landed on %+v", d)
	}
}

func TestDMAUnmappedFaults(t *testing.T) {
	_, _, g, _ := testSetup(t)
	if _, err := g.DMARead(0xBAD00000, 64); err == nil {
		t.Error("unmapped DMA read should fail")
	}
}
