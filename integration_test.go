package repro_test

import (
	"testing"
	"time"

	"repro/internal/addr"
	stellar "repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/multipath"
	"repro/internal/rnic"
	"repro/internal/rund"
	"repro/internal/sim"
	"repro/internal/transport"
)

// TestEndToEndCrossHostGDRWrite is the full-stack integration: a GDR
// write travels from a vStellar device on server A across the sprayed
// multi-path network to server B, where the receiving RNIC's eMTT
// places it into GPU memory without touching B's Root Complex.
//
// It stitches together every layer of the repository: core (vStellar
// lifecycle), rund (secure containers, shm doorbell), pvdma (on-demand
// pinning), rnic+pcie (eMTT RX pipeline), and fabric+transport+multipath
// (OBS spraying with the production transport).
func TestEndToEndCrossHostGDRWrite(t *testing.T) {
	// Two paper-shaped servers.
	newServer := func(name string) *stellar.Host {
		cfg := stellar.DefaultHostConfig()
		cfg.MemoryBytes = 64 << 30
		cfg.GPUMemoryBytes = 2 << 30
		h, err := stellar.NewHost(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	hostA, hostB := newServer("A"), newServer("B")

	// Secure containers in PVDMA mode on both ends.
	ctA, err := hostA.Hypervisor.CreateContainer(rund.DefaultConfig("a0", 8<<30))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctA.Start(rund.PinOnDemand); err != nil {
		t.Fatal(err)
	}
	ctB, err := hostB.Hypervisor.CreateContainer(rund.DefaultConfig("b0", 8<<30))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctB.Start(rund.PinOnDemand); err != nil {
		t.Fatal(err)
	}

	devA, err := hostA.CreateVStellar(ctA, hostA.RNICs[0])
	if err != nil {
		t.Fatal(err)
	}
	devB, err := hostB.CreateVStellar(ctB, hostB.RNICs[0])
	if err != nil {
		t.Fatal(err)
	}

	// Sender-side buffer in A's guest memory (PVDMA pins on demand).
	gvaA, _, err := ctA.AllocGuestBuffer(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := devA.RegisterHostMemory(gvaA); err != nil {
		t.Fatal(err)
	}

	// Receiver-side GDR region in B's GPU memory via the eMTT.
	gmemB, err := hostB.GPUs[0].AllocDeviceMemory(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	gvaB := addr.NewGVARange(0x7fff00000000, 4<<20)
	mrB, err := devB.RegisterGPUMemory(gvaB, gmemB)
	if err != nil {
		t.Fatal(err)
	}
	qpB, err := devB.CreateQP()
	if err != nil {
		t.Fatal(err)
	}

	// The network between the servers: two segments, 60 aggs, OBS/128.
	eng := sim.NewEngine(17)
	net := fabric.New(eng, fabric.Config{
		Segments: 2, HostsPerSegment: 1, Aggs: 60,
		HostLinkBW: 50e9, FabricLinkBW: 50e9,
		LinkDelay: 2 * time.Microsecond, QueueLimit: 16 << 20, ECNThreshold: 512 << 10,
	})
	epA := transport.NewEndpoint(net, 0, transport.Config{})
	epB := transport.NewEndpoint(net, 1, transport.Config{})
	conn, err := transport.Connect(epA, epB, 1, multipath.OBS, 128)
	if err != nil {
		t.Fatal(err)
	}

	const payload = 4 << 20
	var wireDone sim.Time
	conn.Send(payload, func(at sim.Time) { wireDone = at })
	eng.RunAll()
	if wireDone == 0 {
		t.Fatal("network transfer incomplete")
	}
	if got := epB.ReceivedBytes(1); got != payload {
		t.Fatalf("wire delivered %d bytes, want %d", got, payload)
	}

	// Receiver RNIC places the payload into GPU memory: the eMTT fast
	// path must route switch-local, never consulting B's IOMMU.
	iommuWalksBefore := hostB.Complex.IOMMU().Walks()
	res, err := devB.Write(qpB, mrB.Key, gvaB.Start, payload)
	if err != nil {
		t.Fatal(err)
	}
	if res.Route.String() != "p2p-direct" {
		t.Errorf("placement route = %v, want p2p-direct", res.Route)
	}
	if hostB.Complex.IOMMU().Walks() != iommuWalksBefore {
		t.Error("eMTT placement walked the IOMMU")
	}

	// End-to-end virtual latency: wire time + placement.
	total := wireDone.Sub(0) + res.Latency
	if total <= 0 || total > sim.Duration(10*time.Millisecond) {
		t.Errorf("implausible end-to-end time %v", total)
	}

	// On-demand pinning stayed proportional on the sender.
	if pinned := ctA.GuestMemory().PinnedBytes(); pinned > 8<<20 {
		t.Errorf("sender pinned %d bytes for a 4 MiB region", pinned)
	}
}

// TestEndToEndLegacyStackContrast drives the same cross-host write on
// the legacy SR-IOV stack and checks the operational costs the paper
// attributes to it: full-pin boot, LUT consumption, and vSwitch rules
// that degrade with TCP churn.
func TestEndToEndLegacyStackContrast(t *testing.T) {
	cfg := stellar.DefaultHostConfig()
	cfg.MemoryBytes = 128 << 30
	cfg.GPUMemoryBytes = 2 << 30
	h, err := stellar.NewHost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.RNICs[0].SetNumVFs(2); err != nil {
		t.Fatal(err)
	}

	ct, err := h.Hypervisor.CreateContainer(rund.DefaultConfig("legacy", 32<<30))
	if err != nil {
		t.Fatal(err)
	}
	boot, err := ct.Start(rund.PinFull)
	if err != nil {
		t.Fatal(err)
	}
	// Full pin dominates: a 32 GiB container takes ~8 s of pinning.
	if boot.Seconds() < 5 {
		t.Errorf("full-pin boot = %.1f s, implausibly fast", boot.Seconds())
	}

	d0, err := h.CreateLegacyVF(ct, h.RNICs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := h.CreateLegacyVF(ct, h.RNICs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	lutBefore := h.Switches[0].LUTLen()
	if err := d0.EnableGDR(); err != nil {
		t.Fatal(err)
	}
	if h.Switches[0].LUTLen() != lutBefore+1 {
		t.Error("legacy GDR did not claim a LUT slot")
	}

	ctl := stellar.NewController()
	if err := ctl.EstablishRDMA(77, d0, d1); err != nil {
		t.Fatal(err)
	}
	_, rdmaBefore, err := h.RNICs[0].VSwitch().Lookup(rnic.ClassRDMA, 77)
	if err != nil {
		t.Fatal(err)
	}
	ctl.InstallTCPFlows(h.RNICs[0], 500)
	_, rdmaAfter, err := h.RNICs[0].VSwitch().Lookup(rnic.ClassRDMA, 77)
	if err != nil {
		t.Fatal(err)
	}
	if rdmaAfter <= rdmaBefore {
		t.Error("TCP churn did not inflate RDMA steering latency")
	}
}
