// Multipath: the §7 exploration at example scale — inject permutation
// traffic across two network segments and watch how each path-selection
// algorithm loads the ToR uplinks, then sweep the path count to find
// the fan-out that balances 60 aggregation switches (the paper's answer:
// 128).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/collective"
	"repro/internal/fabric"
	"repro/internal/multipath"
	"repro/internal/sim"
	"repro/internal/transport"
)

func cluster(seed uint64) (*sim.Engine, *fabric.Fabric, []*transport.Endpoint) {
	eng := sim.NewEngine(seed)
	f := fabric.New(eng, fabric.Config{
		Segments: 2, HostsPerSegment: 16, Aggs: 60,
		HostLinkBW: 50e9, FabricLinkBW: 50e9,
		LinkDelay: 2 * time.Microsecond, QueueLimit: 16 << 20, ECNThreshold: 512 << 10,
	})
	var eps []*transport.Endpoint
	for h := 0; h < f.NumHosts(); h++ {
		eps = append(eps, transport.NewEndpoint(f, fabric.HostID(h), transport.Config{}))
	}
	return eng, f, eps
}

func main() {
	fmt.Println("permutation traffic: 32 hosts, 2 segments, 60 aggregation switches")
	fmt.Printf("%-12s %6s %14s %14s %12s\n", "algorithm", "paths", "avg queue", "max queue", "goodput")
	for _, alg := range multipath.Algorithms() {
		for _, paths := range []int{4, 128} {
			if alg == multipath.SinglePath && paths != 4 {
				continue
			}
			eng, f, eps := cluster(11)
			res, err := collective.RunPermutation(eng, f, eps, collective.PermutationConfig{
				Alg: alg, Paths: paths, BytesPerFlow: 4 << 20,
				SamplePeriod: sim.Duration(25 * time.Microsecond), Seed: 3,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %6d %11.1f KB %11.0f KB %9.1f GB/s\n",
				alg, paths, res.AvgQueue/1024, float64(res.MaxQueue)/1024, res.Goodput/1e9)
		}
	}

	fmt.Println("\npath-count sweep: 16 connections between two hosts")
	fmt.Printf("%6s %22s %16s\n", "paths", "imbalance(max-min/mean)", "uplinks touched")
	for _, paths := range []int{4, 16, 64, 128, 256} {
		eng, f, eps := cluster(13)
		done := 0
		for i := 0; i < 16; i++ {
			c, err := transport.Connect(eps[0], eps[16], uint64(100+i), multipath.OBS, paths)
			if err != nil {
				log.Fatal(err)
			}
			c.Send(4<<20, func(sim.Time) { done++ })
		}
		eng.RunAll()
		touched := 0
		for _, s := range f.UplinkStats(0) {
			if s.BytesTx > 0 {
				touched++
			}
		}
		fmt.Printf("%6d %22.2f %13d/60\n", paths, f.Imbalance(0), touched)
	}
	fmt.Println("\nexpected shape (paper Figs. 9 & 12): queues collapse at 128 paths; balance needs fan-out >= aggregation count")
}
