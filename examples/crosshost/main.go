// Crosshost: the full vertical in one program — two Stellar servers on
// the sprayed data-center fabric, secure containers on both, and a
// cross-host GDR write: guest memory on server A, across OBS/128 paths,
// placed into server B's GPU memory by the receiving RNIC's eMTT
// without touching B's Root Complex.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/addr"
	stellar "repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/multipath"
	"repro/internal/rund"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	traceOut := flag.String("trace", "", "write a Chrome/Perfetto trace of the run to this file")
	flag.Parse()
	hostCfg := stellar.DefaultHostConfig()
	hostCfg.MemoryBytes = 64 << 30
	hostCfg.GPUMemoryBytes = 4 << 30
	cl, err := stellar.NewCluster(stellar.ClusterConfig{
		NumHosts: 2,
		Host:     hostCfg,
		Fabric: fabric.Config{
			Segments: 2, Aggs: 60,
			HostLinkBW: 50e9, FabricLinkBW: 50e9,
			LinkDelay: 2 * time.Microsecond, QueueLimit: 16 << 20, ECNThreshold: 512 << 10,
		},
		Transport: transport.Config{},
		Seed:      2025,
	})
	if err != nil {
		log.Fatal(err)
	}

	var tr *trace.Tracer
	if *traceOut != "" {
		tr = trace.New(0)
		cl.SetTracer(tr)
	}

	// Containers and vStellar devices on both servers.
	mkDev := func(i int) (*rund.Container, *stellar.VStellarDevice) {
		h := cl.Hosts[i]
		ct, err := h.Hypervisor.CreateContainer(rund.DefaultConfig(fmt.Sprintf("pod-%d", i), 16<<30))
		if err != nil {
			log.Fatal(err)
		}
		boot, err := ct.Start(rund.PinOnDemand)
		if err != nil {
			log.Fatal(err)
		}
		dev, err := h.CreateVStellar(ct, h.RNICs[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("server %d: pod booted in %.1f s, vStellar device %d ready\n", i, boot.Seconds(), dev.ID)
		return ct, dev
	}
	_, devA := mkDev(0)
	_, devB := mkDev(1)

	// Receiver-side GDR region on server B's GPU.
	gmem, err := cl.Hosts[1].GPUs[0].AllocDeviceMemory(64 << 20)
	if err != nil {
		log.Fatal(err)
	}
	gva := addr.NewGVARange(0x7fff00000000, 64<<20)
	mr, err := devB.RegisterGPUMemory(gva, gmem)
	if err != nil {
		log.Fatal(err)
	}
	qp, err := devB.CreateQP()
	if err != nil {
		log.Fatal(err)
	}

	conn, err := cl.ConnectRDMA(0, 1, devA, devB, qp, mr, multipath.OBS, 128)
	if err != nil {
		log.Fatal(err)
	}

	const payload = 32 << 20
	conn.Write(gva.Start, payload, func(r stellar.RemoteWrite, err error) {
		if err != nil {
			log.Fatal(err)
		}
		gbps := float64(payload) * 8 / r.WireTime.Seconds() / 1e9
		fmt.Printf("\ncross-host GDR write of %d MiB:\n", payload>>20)
		fmt.Printf("  wire: completed at %v (%.0f Gbps over 128 sprayed paths)\n", r.WireTime, gbps)
		fmt.Printf("  placement: route=%s, %d ATC misses (eMTT bypassed the Root Complex)\n",
			r.Placement.Route, r.Placement.ATCMisses)
	})
	cl.Engine.RunAll()

	// How evenly did the spray load the fabric?
	fmt.Printf("  fabric: segment-0 uplink imbalance %.2f across 60 aggregation switches\n",
		cl.Fabric.Imbalance(0))

	if tr != nil {
		if err := tr.WriteJSONFile(*traceOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  trace: %d events -> %s (open in ui.perfetto.dev)\n", tr.Len(), *traceOut)
	}
}
