// Quickstart: build a Stellar GPU server, boot a RunD secure container
// in PVDMA mode, create a vStellar device, register memory, and issue
// RDMA and GDR writes — the minimal end-to-end tour of the stack.
package main

import (
	"fmt"
	"log"

	"repro/internal/addr"
	stellar "repro/internal/core"
	"repro/internal/rund"
)

func main() {
	// A paper-shaped server: 4 PCIe switches, 4 RNICs (2x200G each,
	// eMTT on), 8 GPUs, 2 TiB RAM.
	host, err := stellar.NewHost(stellar.DefaultHostConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Boot a secure container WITHOUT pinning its memory: PVDMA defers
	// that to first DMA. Compare the boot time against PinFull.
	ct, err := host.Hypervisor.CreateContainer(rund.DefaultConfig("quick", 256<<30))
	if err != nil {
		log.Fatal(err)
	}
	boot, err := ct.Start(rund.PinOnDemand)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("container booted in %.1f s (virtual) with 0 B pinned\n", boot.Seconds())

	// A vStellar device: no SR-IOV VF, no extra PCIe BDF, no switch LUT
	// entry — just an SF, a protection domain, and a doorbell page
	// mapped through the virtio shm window.
	dev, err := host.CreateVStellar(ct, host.RNICs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vStellar device %d up in %.1f s, doorbell at %v\n",
		dev.ID, dev.CreateLatency.Seconds(), dev.DoorbellGPA())

	// Control path (virtio-intercepted): create a QP and register a
	// guest buffer. PVDMA pins exactly the pages the buffer covers.
	qp, err := dev.CreateQP()
	if err != nil {
		log.Fatal(err)
	}
	gva, _, err := ct.AllocGuestBuffer(4 << 20)
	if err != nil {
		log.Fatal(err)
	}
	mr, err := dev.RegisterHostMemory(gva)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered 4 MiB; container has %d MiB pinned (of %d MiB RAM)\n",
		ct.GuestMemory().PinnedBytes()>>20, ct.Config().MemoryBytes>>20)

	// Data path (direct-mapped): an inbound RDMA write lands in guest
	// memory through the IOMMU, no hypervisor involvement.
	res, err := dev.Write(qp, mr.Key, gva.Start, 64<<10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RDMA write 64 KiB: route=%s latency=%v\n", res.Route, res.Latency)

	// GDR: register GPU memory through the eMTT; the write bypasses the
	// Root Complex entirely (AT=translated, switch-local P2P).
	gmem, err := host.GPUs[0].AllocDeviceMemory(16 << 20)
	if err != nil {
		log.Fatal(err)
	}
	ggva := addr.NewGVARange(0x7fff00000000, 16<<20)
	gmr, err := dev.RegisterGPUMemory(ggva, gmem)
	if err != nil {
		log.Fatal(err)
	}
	gres, err := dev.Write(qp, gmr.Key, ggva.Start, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GDR write 1 MiB: route=%s latency=%v\n", gres.Route, gres.Latency)

	// Devices tear down in software time, not reboots.
	dev.Destroy()
	fmt.Printf("device destroyed; host now has %d devices\n", host.NumDevices())
}
