// Serverless: the dense-deployment scenario of §3.1 Problems ②/③ —
// 100+ inference pods per server. The legacy SR-IOV stack hits the
// PCIe switch LUT wall and pays full-pin boot costs; Stellar spins the
// same density up in seconds with one LUT entry per RNIC.
package main

import (
	"errors"
	"fmt"
	"log"

	stellar "repro/internal/core"
	"repro/internal/pcie"
	"repro/internal/rund"
)

const pods = 120

func main() {
	fmt.Printf("deploying %d GDR-capable inference pods on one server\n\n", pods)
	legacy()
	fmt.Println()
	stellarPath()
}

// legacy provisions SR-IOV VFs with VFIO containers: the experiment
// stops where production did — at the LUT.
func legacy() {
	fmt.Println("--- legacy SR-IOV / VFIO / VxLAN ---")
	cfg := stellar.DefaultHostConfig()
	cfg.MemoryBytes = 4 << 40
	host, err := stellar.NewHost(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Problem ①: the VF count is fixed at host start-up. Provision the
	// vendor maximum up front and pay the queue memory.
	memBefore := host.Complex.Memory().UsedBytes()
	perRNIC := host.RNICs[0].Config().MaxVFs
	for _, r := range host.RNICs {
		if err := r.SetNumVFs(perRNIC); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("provisioned %d VFs/RNIC up front: %d GiB of VF queue memory\n",
		perRNIC, (host.Complex.Memory().UsedBytes()-memBefore)>>30)

	// Problem ③: GDR needs a LUT slot per VF; each switch holds 32.
	gdrCapable := 0
	for _, r := range host.RNICs {
		for _, vf := range r.VFs() {
			if err := vf.EnableGDR(); err != nil {
				if errors.Is(err, pcie.ErrLUTFull) {
					break
				}
				log.Fatal(err)
			}
			gdrCapable++
		}
	}
	fmt.Printf("GDR-capable VFs across the server: %d (need %d)\n", gdrCapable, pods)

	// Problem ②: each pod must pin all its memory before RDMA works.
	ct, err := host.Hypervisor.CreateContainer(rund.DefaultConfig("legacy-pod", 16<<30))
	if err != nil {
		log.Fatal(err)
	}
	boot, err := ct.Start(rund.PinFull)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one 16 GiB pod boots in %.1f s (full pin)\n", boot.Seconds())
	fmt.Printf("verdict: %d of %d pods can enable GDR; density blocked by the PCIe fabric\n",
		gdrCapable, pods)
}

// stellarPath runs the same deployment on vStellar devices.
func stellarPath() {
	fmt.Println("--- Stellar / vStellar / PVDMA ---")
	cfg := stellar.DefaultHostConfig()
	cfg.MemoryBytes = 4 << 40
	host, err := stellar.NewHost(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var worstBoot float64
	for i := 0; i < pods; i++ {
		ct, err := host.Hypervisor.CreateContainer(rund.DefaultConfig(fmt.Sprintf("pod-%d", i), 16<<30))
		if err != nil {
			log.Fatal(err)
		}
		boot, err := ct.Start(rund.PinOnDemand)
		if err != nil {
			log.Fatal(err)
		}
		if boot.Seconds() > worstBoot {
			worstBoot = boot.Seconds()
		}
		if _, err := host.CreateVStellar(ct, host.RNICs[i%len(host.RNICs)]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%d pods up, each with a GDR-capable vStellar device\n", host.NumDevices())
	fmt.Printf("worst pod boot: %.1f s (PVDMA, nothing pinned up front)\n", worstBoot)
	for i, sw := range host.Switches {
		fmt.Printf("switch %d LUT: %d/%d (PF only)\n", i, sw.LUTLen(), sw.LUTCapacity())
	}
	fmt.Printf("headroom: %d more devices before the %d-device ceiling\n",
		host.DeviceLimit()-host.NumDevices(), host.DeviceLimit())
}
