// LLM training: the §8.2 end-to-end experiment at example scale — a
// 1,024-GPU (128-host) Megatron job whose data-parallel AllReduce runs
// on the simulated HPN fabric, comparing the Stellar transport (OBS,
// 128 sprayed paths) against a CX7-style single-path ECMP baseline
// under both cluster-scheduling strategies.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/fabric"
	"repro/internal/multipath"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	model := workload.Table1()[0] // Megatron Llama-33B
	fmt.Printf("model: %s (%d GPUs in production strategy)\n\n", model, model.GPUs())

	for _, placement := range []workload.Placement{workload.Reranked, workload.RandomRanking} {
		fmt.Printf("placement: %v\n", placement)
		speeds := map[string]float64{}
		for _, stack := range []struct {
			name  string
			alg   multipath.Algorithm
			paths int
		}{
			{"cx7 single-path", multipath.SinglePath, 128},
			{"stellar obs/128", multipath.OBS, 128},
		} {
			eng := sim.NewEngine(7)
			f := fabric.New(eng, fabric.Config{
				Segments: 2, HostsPerSegment: 64, Aggs: 60,
				HostLinkBW: 50e9, FabricLinkBW: 50e9,
				LinkDelay: 2 * time.Microsecond, QueueLimit: 16 << 20, ECNThreshold: 512 << 10,
			})
			var eps []*transport.Endpoint
			for h := 0; h < f.NumHosts(); h++ {
				eps = append(eps, transport.NewEndpoint(f, fabric.HostID(h),
					transport.Config{MTU: 16 << 10, InitialWindow: 1 << 20}))
			}
			res, err := workload.RunStep(eng, f, eps, workload.JobConfig{
				Model: model, Platform: workload.DefaultPlatform(),
				Alg: stack.alg, Paths: stack.paths,
				Placement: placement, PlacementSeed: 51,
				SimBytes: 24 << 20, OverlapFactor: 0.5,
			})
			if err != nil {
				log.Fatal(err)
			}
			speeds[stack.name] = res.Speed()
			fmt.Printf("  %-16s busBW/GPU=%.2f GB/s  comm=%.2fs  step=%.2fs  (%.4f steps/s)\n",
				stack.name, res.BusBW/1e9, res.CommTime.Seconds(), res.StepTime.Seconds(), res.Speed())
		}
		imp := speeds["stellar obs/128"]/speeds["cx7 single-path"] - 1
		fmt.Printf("  => stellar improvement: %+.2f%%\n\n", imp*100)
	}
	fmt.Println("expected shape (paper Fig. 16): negligible gap when reranked, ~6% average gap under random ranking")
}
