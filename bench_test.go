package repro_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/addr"
	stellar "repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/multipath"
	"repro/internal/pagetable"
	"repro/internal/rnic"
	"repro/internal/rund"
	"repro/internal/sim"
	"repro/internal/transport"
)

// ---------------------------------------------------------------------
// Figure/table regeneration benches: one per experiment in §5–§8. Each
// runs the full experiment (deterministic, seed 42) per iteration; with
// the default -benchtime the heavy network experiments execute once.
// Run `go test -bench 'Fig|Table|Sec|Ablation' -benchtime 1x` for a full
// regeneration pass, or cmd/stellarbench to see the printed tables.
// ---------------------------------------------------------------------

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, err := r.Run(42)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("empty result table")
		}
	}
}

func BenchmarkFig6PodStartup(b *testing.B)         { benchExperiment(b, "fig6") }
func BenchmarkFig8ATCMiss(b *testing.B)            { benchExperiment(b, "fig8") }
func BenchmarkFig9PermutationQueues(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10aStaticBackground(b *testing.B) { benchExperiment(b, "fig10a") }
func BenchmarkFig10bBurstyBackground(b *testing.B) { benchExperiment(b, "fig10b") }
func BenchmarkFig11LinkFailures(b *testing.B)      { benchExperiment(b, "fig11") }
func BenchmarkFig12PortImbalance(b *testing.B)     { benchExperiment(b, "fig12") }
func BenchmarkFig13Microbenchmark(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkFig14GDRThroughput(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkFig15Virtualization(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkFig16aReranked(b *testing.B)         { benchExperiment(b, "fig16a") }
func BenchmarkFig16bRandomRanking(b *testing.B)    { benchExperiment(b, "fig16b") }
func BenchmarkTable1CommRatios(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkSec4Agility(b *testing.B)            { benchExperiment(b, "sec4") }
func BenchmarkAblationEMTT(b *testing.B)           { benchExperiment(b, "ablation-emtt") }
func BenchmarkAblationPVDMABlockSize(b *testing.B) { benchExperiment(b, "ablation-pvdma-block") }
func BenchmarkAblationPerPathCC(b *testing.B)      { benchExperiment(b, "ablation-perpath-cc") }
func BenchmarkAblationRTOSensitivity(b *testing.B) { benchExperiment(b, "ablation-rto") }
func BenchmarkAblationFlowlet(b *testing.B)        { benchExperiment(b, "ablation-flowlet") }
func BenchmarkAblationPathAware(b *testing.B)      { benchExperiment(b, "ablation-pathaware") }
func BenchmarkProb6CoreImbalance(b *testing.B)     { benchExperiment(b, "prob6-core") }
func BenchmarkProblemsReplay(b *testing.B)         { benchExperiment(b, "problems") }
func BenchmarkTCPPath(b *testing.B)                { benchExperiment(b, "tcp-path") }
func BenchmarkMoEAllToAll(b *testing.B)            { benchExperiment(b, "moe-alltoall") }
func BenchmarkLinkFailRecovery(b *testing.B)       { benchExperiment(b, "linkfail-recovery") }
func BenchmarkAblationCC(b *testing.B)             { benchExperiment(b, "ablation-cc") }
func BenchmarkLBTaxonomy(b *testing.B)             { benchExperiment(b, "lb-taxonomy") }
func BenchmarkDeployHeadline(b *testing.B)         { benchExperiment(b, "deploy") }

// benchRunAll measures the parallel harness: a fixed batch of
// experiments on a bounded worker pool. The subset mixes sim-heavy and
// host-side experiments so the pool actually has imbalance to absorb.
func benchRunAll(b *testing.B, workers int) {
	runners, err := experiments.Select("fig12,fig13,table1,tcp-path,prob6-core,chaos-recovery,sec4,ablation-emtt")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(42)
		s.Parallelism = workers
		results, err := experiments.RunAll(context.Background(), s, runners, workers)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			if len(res.Table.Rows) == 0 {
				b.Fatal("empty result table")
			}
		}
	}
}

func BenchmarkRunAllParallel1(b *testing.B) { benchRunAll(b, 1) }
func BenchmarkRunAllParallel2(b *testing.B) { benchRunAll(b, 2) }
func BenchmarkRunAllParallel4(b *testing.B) { benchRunAll(b, 4) }
func BenchmarkRunAllParallel8(b *testing.B) { benchRunAll(b, 8) }

// ---------------------------------------------------------------------
// Hot-path micro-benchmarks: the data structures whose cost determines
// simulator throughput.
// ---------------------------------------------------------------------

func BenchmarkTLBLookupHit(b *testing.B) {
	tlb := pagetable.NewTLB(8192, addr.PageSize4K)
	for p := uint64(0); p < 8192; p++ {
		tlb.Insert(p*addr.PageSize4K, 1<<40+p*addr.PageSize4K)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tlb.Lookup(uint64(i%8192) * addr.PageSize4K)
	}
}

func BenchmarkTLBInsertEvict(b *testing.B) {
	tlb := pagetable.NewTLB(1024, addr.PageSize4K)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tlb.Insert(uint64(i)*addr.PageSize4K, uint64(i))
	}
}

func BenchmarkEngineEventChurn(b *testing.B) {
	eng := sim.NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(time.Microsecond, func() {})
		eng.Step()
	}
}

// benchSchedulerRTO emulates the transport's per-packet timer pattern:
// every "packet" arms an RTO 250 µs out and cancels it ~1 µs later when
// the "ack" arrives, with a standing population of armed timers — the
// cancel-heavy workload the timer wheel exists for.
func benchSchedulerRTO(b *testing.B, mode sim.SchedulerMode) {
	eng := sim.NewEngineMode(1, mode)
	// Concurrently armed timers, like packets in flight. Each iteration
	// advances virtual time ~1 µs, so a timer is canceled well before
	// its 250 µs expiry — like an RTO on a healthy network.
	const window = 128
	ring := make([]*sim.Event, window)
	nop := func(any) {}
	cancelFn := func(a any) { ring[a.(int)].Cancel() }
	for i := 0; i < window; i++ {
		ring[i] = eng.AfterArg(250*time.Microsecond, nop, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % window
		eng.AfterArg(time.Microsecond, cancelFn, slot)
		eng.Step() // fires the ack, canceling one armed RTO...
		ring[slot] = eng.AfterArg(250*time.Microsecond, nop, nil)
	}
}

func BenchmarkSchedulerRTOWheel(b *testing.B) { benchSchedulerRTO(b, sim.SchedulerWheel) }
func BenchmarkSchedulerRTOHeap(b *testing.B)  { benchSchedulerRTO(b, sim.SchedulerHeap) }

func BenchmarkSelectorOBS(b *testing.B) {
	s := multipath.New(multipath.OBS, 128, sim.NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.NextPath()
	}
}

func BenchmarkSelectorDWRR(b *testing.B) {
	s := multipath.New(multipath.DWRR, 128, sim.NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.NextPath()
	}
}

func BenchmarkRDMAWriteEMTTGDR(b *testing.B) {
	cfg := stellar.DefaultHostConfig()
	cfg.MemoryBytes = 16 << 30
	cfg.GPUMemoryBytes = 1 << 30
	cfg.NumRNICs, cfg.NumGPUs, cfg.NumSwitches = 1, 1, 1
	h, err := stellar.NewHost(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r := h.RNICs[0]
	gmem, err := h.GPUs[0].AllocDeviceMemory(64 << 20)
	if err != nil {
		b.Fatal(err)
	}
	pd := r.AllocPD()
	va := addr.Range{Start: 0x100000000, Size: 64 << 20}
	mr, err := r.RegisterMR(pd, va, rnic.MTTEntry{Base: gmem.Start, Owner: addr.OwnerGPU, Translated: true})
	if err != nil {
		b.Fatal(err)
	}
	qp, err := r.CreateQP(pd)
	if err != nil {
		b.Fatal(err)
	}
	for _, st := range []rnic.QPState{rnic.QPInit, rnic.QPReadyToReceive, rnic.QPReadyToSend} {
		if err := r.ModifyQP(qp, st); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RDMAWrite(qp, mr.Key, va.Start, 64<<10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFabricPacketDelivery(b *testing.B) {
	eng := sim.NewEngine(1)
	f := fabric.New(eng, fabric.Config{
		Segments: 2, HostsPerSegment: 4, Aggs: 8,
		HostLinkBW: 50e9, FabricLinkBW: 50e9,
		LinkDelay: time.Microsecond, QueueLimit: 64 << 20, ECNThreshold: 32 << 20,
	})
	f.Handle(4, func(*fabric.Packet) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Send(&fabric.Packet{Src: 0, Dst: 4, Size: 4096, PathID: i % 8, Seq: uint64(i)}); err != nil {
			b.Fatal(err)
		}
		eng.RunAll()
	}
}

func BenchmarkTransportThroughput(b *testing.B) {
	// End-to-end transport cost per delivered megabyte.
	eng := sim.NewEngine(1)
	f := fabric.New(eng, fabric.Config{
		Segments: 2, HostsPerSegment: 2, Aggs: 8,
		HostLinkBW: 50e9, FabricLinkBW: 50e9,
		LinkDelay: time.Microsecond, QueueLimit: 16 << 20, ECNThreshold: 512 << 10,
	})
	src := transport.NewEndpoint(f, 0, transport.Config{})
	dst := transport.NewEndpoint(f, 2, transport.Config{})
	c, err := transport.Connect(src, dst, 1, multipath.OBS, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		c.Send(1<<20, func(sim.Time) { done = true })
		eng.RunAll()
		if !done {
			b.Fatal("transfer incomplete")
		}
	}
}

func BenchmarkTransportRTOHeavy(b *testing.B) {
	// The worst case for the scheduler: a deep in-flight window keeps
	// hundreds of armed RTOs queued, loss makes some of them fire, and
	// every delivered packet cancels one — the workload §7.2's 250 µs
	// RTO imposes on the event queue at cluster scale.
	eng := sim.NewEngine(1)
	f := fabric.New(eng, fabric.Config{
		Segments: 2, HostsPerSegment: 2, Aggs: 8,
		HostLinkBW: 50e9, FabricLinkBW: 50e9,
		LinkDelay: 10 * time.Microsecond, QueueLimit: 16 << 20, ECNThreshold: 4 << 20,
	})
	for a := 0; a < 8; a++ {
		f.InjectLoss(0, a, 0.02)
	}
	src := transport.NewEndpoint(f, 0, transport.Config{MaxWindow: 8 << 20})
	dst := transport.NewEndpoint(f, 2, transport.Config{})
	c, err := transport.Connect(src, dst, 1, multipath.OBS, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		c.Send(4<<20, func(sim.Time) { done = true })
		eng.RunAll()
		if !done {
			b.Fatal("transfer incomplete")
		}
	}
}

func BenchmarkContainerBootPVDMA(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := stellar.DefaultHostConfig()
		cfg.MemoryBytes = 256 << 30
		h, err := stellar.NewHost(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ct, err := h.Hypervisor.CreateContainer(rund.DefaultConfig("bench", 64<<30))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ct.Start(rund.PinOnDemand); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVStellarDeviceCreate(b *testing.B) {
	cfg := stellar.DefaultHostConfig()
	cfg.MemoryBytes = 64 << 30
	cfg.GPUMemoryBytes = 1 << 30
	h, err := stellar.NewHost(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ct, err := h.Hypervisor.CreateContainer(rund.DefaultConfig("bench", 8<<30))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ct.Start(rund.PinOnDemand); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := h.CreateVStellar(ct, h.RNICs[i%len(h.RNICs)])
		if err != nil {
			b.Fatal(err)
		}
		d.Destroy()
	}
}
